package benchsuite

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/rt"
	"urcgc/internal/trace"
)

// StageLatencyBreakdown runs a simulated load with the event recorder
// attached and reports the per-stage latency table computed from the log:
// where between emission and uniform coverage a message spends its rounds.
// Submissions land on odd rounds so the outbox stage is visible (messages
// wait for the next subrun boundary), and a 1-in-50 send omission makes
// the waiting-list stage real: a dropped data message forces its sender's
// next message to park until recovery fills the gap. The metrics land in
// BENCH_BASELINE.json so EXPERIMENTS.md can carry the breakdown and
// future PRs can see stage-level regressions, not just end-to-end ones.
func StageLatencyBreakdown(b *testing.B) {
	b.ReportAllocs()
	var bd lifecycle.Breakdown
	for i := 0; i < b.N; i++ {
		c, err := core.NewCluster(core.ClusterConfig{
			Config:   core.Config{N: 10, K: 3, R: 8, SelfExclusion: true},
			Seed:     int64(i) + 1,
			Injector: &fault.EveryNth{N: 50, Side: fault.AtSend},
		})
		if err != nil {
			b.Fatal(err)
		}
		rec := trace.NewRecorder(c.N())
		c.Trace = rec
		rng := rand.New(rand.NewSource(int64(i) + 7))
		_, err = c.Run(core.RunOptions{
			MaxRounds: 2*60 + 200, MinRounds: 2 * 60,
			OnRound: func(round int) {
				if round%2 != 1 || round/2 >= 60 {
					return
				}
				for p := 0; p < c.N(); p++ {
					pp := mid.ProcID(p)
					if c.Active(pp) && rng.Float64() < 1.0 {
						_, _ = c.Submit(pp, make([]byte, 64), nil)
					}
				}
			},
			StopWhenQuiescent: true, DrainSubruns: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		bd = lifecycle.FromRecorder(rec)
	}
	b.ReportMetric(bd.MeanEmitToBroadcast, "emit_to_bcast_rtd")
	b.ReportMetric(bd.MeanEmitToFirstProcess, "emit_to_first_rtd")
	b.ReportMetric(bd.MeanEmitToUniform, "emit_to_uniform_rtd")
	b.ReportMetric(bd.P99EmitToUniform, "emit_to_uniform_p99_rtd")
	b.ReportMetric(bd.MeanWait, "wait_rtd")
	b.ReportMetric(bd.P99Wait, "wait_p99_rtd")
}

// LifecycleOverhead is LiveConfirmLatency with lifecycle tracing enabled —
// the same mesh, codec and load. Comparing its ns/op and allocs/op against
// LiveConfirmLatency bounds what span recording costs when switched on;
// the disabled path is separately proven 0-extra-allocs by the rt tests.
func LifecycleOverhead(b *testing.B) {
	c, err := rt.NewCluster(rt.Config{
		Config:        core.Config{N: 5, K: 3, R: 8, SelfExclusion: true},
		RoundDuration: 200 * time.Microsecond,
		Lifecycle:     &lifecycle.Options{},
	})
	if err != nil {
		b.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Node(mid.ProcID(i%5)).Send(ctx, payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}

package faultrt

import (
	"strings"
	"testing"
	"time"

	"urcgc/internal/mid"
	"urcgc/internal/obs"
)

func TestNone(t *testing.T) {
	var in None
	if in.Crashed(0, time.Second) {
		t.Error("None must never crash anyone")
	}
	if in.Send(0, 1, 0).Faulty() || in.Recv(0, 1, 0).Faulty() {
		t.Error("None must never fault a datagram")
	}
}

func TestCrashAt(t *testing.T) {
	c := CrashAt{Proc: 2, At: 100 * time.Millisecond}
	if c.Crashed(2, 99*time.Millisecond) {
		t.Error("not crashed before At")
	}
	if !c.Crashed(2, 100*time.Millisecond) || !c.Crashed(2, time.Hour) {
		t.Error("crashed from At onwards, permanently")
	}
	if c.Crashed(1, time.Hour) {
		t.Error("other processes unaffected")
	}
	if !c.Send(2, 0, time.Second).Drop {
		t.Error("crashed sender emits nothing")
	}
	if c.Send(0, 2, time.Second).Drop {
		t.Error("sends to a crashed process still leave the sender")
	}
	if !c.Recv(0, 2, time.Second).Drop {
		t.Error("crashed receiver absorbs nothing")
	}
}

func TestDropEverySchedule(t *testing.T) {
	d := &DropEvery{N: 3, Side: AtSend}
	var drops []int
	for i := 1; i <= 9; i++ {
		if d.Send(0, 1, 0).Drop {
			drops = append(drops, i)
		}
	}
	if len(drops) != 3 || drops[0] != 3 || drops[1] != 6 || drops[2] != 9 {
		t.Errorf("drops = %v, want [3 6 9]", drops)
	}
	if d.Recv(0, 1, 0).Faulty() {
		t.Error("send-side injector must not act at receive")
	}
}

func TestDelayEveryReordersDeterministically(t *testing.T) {
	mk := func() *DelayEvery {
		return NewDelayEvery(2, time.Millisecond, 4*time.Millisecond, AtRecv, 42)
	}
	a, b := mk(), mk()
	for i := 0; i < 50; i++ {
		av, bv := a.Recv(0, 1, 0), b.Recv(0, 1, 0)
		if av != bv {
			t.Fatalf("consult %d: %+v vs %+v", i, av, bv)
		}
		if i%2 == 1 {
			if av.Delay < time.Millisecond {
				t.Fatalf("consult %d: delay %v below base", i, av.Delay)
			}
			if !av.Kinds.Has(KindDelay) {
				t.Fatalf("consult %d: kinds %v", i, av.Kinds)
			}
		} else if av.Faulty() {
			t.Fatalf("consult %d: off-cadence fault %+v", i, av)
		}
	}
}

func TestDupEvery(t *testing.T) {
	d := &DupEvery{N: 2, Copies: 3, Side: AtSend}
	if d.Send(0, 1, 0).Dup != 0 {
		t.Error("first datagram must pass")
	}
	act := d.Send(0, 1, 0)
	if act.Dup != 3 || !act.Kinds.Has(KindDuplicate) {
		t.Errorf("second datagram: %+v", act)
	}
}

func TestPartitionCutsBothWaysAndHeals(t *testing.T) {
	p := Partition{From: time.Second, To: 2 * time.Second,
		SideA: map[mid.ProcID]bool{0: true, 1: true}}
	if p.Send(0, 2, 500*time.Millisecond).Drop {
		t.Error("no cut before From")
	}
	if !p.Send(0, 2, time.Second).Drop || !p.Send(2, 0, time.Second).Drop {
		t.Error("cut must drop both directions")
	}
	if p.Send(0, 1, time.Second).Drop || p.Send(2, 3, time.Second).Drop {
		t.Error("intra-side traffic must flow")
	}
	if p.Send(0, 2, 2*time.Second).Drop {
		t.Error("cut must heal at To")
	}
	if !p.Send(0, 2, 1500*time.Millisecond).Kinds.Has(KindPartition) {
		t.Error("cut drops must carry the partition kind")
	}
}

// TestDuringScopesInnerCounting pins the combinator scoping contract shared
// with internal/fault: During does not consult its inner injector outside
// the window, so a counter-based inner injector counts in-window datagrams
// only.
func TestDuringScopesInnerCounting(t *testing.T) {
	d := During{From: 10 * time.Millisecond, To: 20 * time.Millisecond,
		Inner: &DropEvery{N: 3, Side: AtSend}}
	// 5 out-of-window consultations must not advance the inner counter.
	for i := 0; i < 5; i++ {
		if d.Send(0, 1, 0).Faulty() {
			t.Fatal("no faults before the window")
		}
	}
	var drops []int
	for i := 1; i <= 6; i++ {
		if d.Send(0, 1, 15*time.Millisecond).Drop {
			drops = append(drops, i)
		}
	}
	if len(drops) != 2 || drops[0] != 3 || drops[1] != 6 {
		t.Errorf("in-window drops = %v, want [3 6] (window-scoped counting)", drops)
	}
	if d.Send(0, 1, 25*time.Millisecond).Faulty() {
		t.Error("no faults after the window")
	}
}

func TestOnlyProcScopesInnerCounting(t *testing.T) {
	o := OnlyProc{Proc: 1, Inner: &DropEvery{N: 2, Side: AtSend}}
	if o.Send(0, 2, 0).Faulty() || o.Send(0, 2, 0).Faulty() {
		t.Fatal("other senders' datagrams must pass unconsulted")
	}
	if o.Send(1, 2, 0).Drop {
		t.Fatal("proc 1's first datagram must pass")
	}
	if !o.Send(1, 2, 0).Drop {
		t.Error("proc 1's second datagram must drop: other procs' traffic must not advance the counter")
	}
}

func TestMultiConsultsEveryMemberAndMerges(t *testing.T) {
	a := &DropEvery{N: 2, Side: AtSend}
	b := &DupEvery{N: 2, Copies: 1, Side: AtSend}
	m := Multi{a, b}
	first := m.Send(0, 1, 0)
	if first.Faulty() {
		t.Fatalf("first datagram faulted: %+v", first)
	}
	second := m.Send(0, 1, 0)
	if !second.Drop || second.Dup != 1 {
		t.Fatalf("second datagram must merge drop+dup: %+v", second)
	}
	if !second.Kinds.Has(KindDrop) || !second.Kinds.Has(KindDuplicate) {
		t.Errorf("kinds = %v", second.Kinds)
	}
}

func TestCrashesDeterministicOrderWithHighProcID(t *testing.T) {
	sched := map[mid.ProcID]time.Duration{
		70000: time.Second, // above 1<<16: the sim-side bug this mirrors
		3:     2 * time.Second,
		1:     3 * time.Second,
	}
	m := Crashes(sched)
	if len(m) != 3 {
		t.Fatalf("len = %d, want 3", len(m))
	}
	want := []mid.ProcID{1, 3, 70000}
	for i, in := range m {
		c := in.(CrashAt)
		if c.Proc != want[i] {
			t.Errorf("member %d = p%d, want p%d", i, c.Proc, want[i])
		}
	}
	if !m.Crashed(70000, time.Second) {
		t.Error("high ProcID crash must be honored")
	}
}

// replay drives an injector with a fixed synthetic consultation sequence
// through a Hook on a deterministic clock and returns the trace.
func replay(t *testing.T, inj Injector, reg *obs.Registry) string {
	t.Helper()
	h := NewHook(inj, reg)
	var now time.Duration
	h.now = func() time.Duration { return now }
	const n = 4
	for step := 0; step < 2000; step++ {
		now = time.Duration(step) * time.Millisecond
		for src := mid.ProcID(0); src < n; src++ {
			h.Crashed(src)
			for dst := mid.ProcID(0); dst < n; dst++ {
				if dst == src {
					continue
				}
				h.Send(src, dst)
				h.Recv(src, dst)
			}
		}
	}
	return h.TraceString()
}

// TestHookTraceDeterministic is the determinism guarantee: the same seed
// and the same consultation schedule yield the identical injected-fault
// trace, byte for byte.
func TestHookTraceDeterministic(t *testing.T) {
	sched := func() *Schedule {
		return NewSchedule(7, 4, 2*time.Second, 2*time.Millisecond, 8)
	}
	t1 := replay(t, sched().Injector(), nil)
	t2 := replay(t, sched().Injector(), nil)
	if t1 != t2 {
		t.Fatalf("traces differ under identical seed+schedule:\n--- run 1 ---\n%.400s\n--- run 2 ---\n%.400s", t1, t2)
	}
	if t1 == "" {
		t.Fatal("the schedule injected nothing over 2000 steps")
	}
	if t3 := replay(t, NewSchedule(8, 4, 2*time.Second, 2*time.Millisecond, 8).Injector(), nil); t3 == t1 {
		t.Error("a different seed should produce a different trace")
	}
}

func TestScheduleStringDeterministic(t *testing.T) {
	a := NewSchedule(99, 5, time.Minute, 2*time.Millisecond, 8)
	b := NewSchedule(99, 5, time.Minute, 2*time.Millisecond, 8)
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans:\n%s\nvs\n%s", a, b)
	}
	if a.PartTo-a.PartFrom >= time.Duration(a.K)*2*a.Round+a.Round {
		t.Errorf("partition %v..%v not shorter than K subruns", a.PartFrom, a.PartTo)
	}
	if int(a.CrashProc) < 0 || int(a.CrashProc) >= 5 {
		t.Errorf("crash proc %d outside group", a.CrashProc)
	}
	sideA := 0
	for p, in := range a.PartSideA {
		if in {
			sideA++
		}
		if int(p) < 0 || int(p) >= 5 {
			t.Errorf("side-A member %d outside group", p)
		}
	}
	if sideA == 0 || sideA >= 5 {
		t.Errorf("degenerate partition side of %d", sideA)
	}
}

func TestHookCountsKindsAndBlames(t *testing.T) {
	reg := obs.New()
	h := NewHook(Multi{
		CrashAt{Proc: 1, At: 0},
		&DupEvery{N: 1, Copies: 1, Side: AtSend},
	}, reg)
	if !h.Crashed(1) {
		t.Fatal("p1 must be crashed")
	}
	h.Crashed(1) // second observation must not double-count
	act := h.Send(0, 2)
	if act.Dup != 1 {
		t.Fatalf("act = %+v", act)
	}
	inj := h.Injected()
	if inj["crash"] != 1 || inj["duplicate"] != 1 {
		t.Errorf("injected = %v", inj)
	}
	snap := reg.Snapshot()
	if snap[obs.Labeled("faultrt_injected_total", "kind", "crash")] != 1 {
		t.Errorf("crash counter not exported: %v", snap)
	}
	if b := h.Blame([]mid.MID{{Proc: 1, Seq: 4}}); b == "" {
		t.Error("blame for the crashed proc must not be empty")
	} else if !strings.Contains(b, "crashed") {
		t.Errorf("blame %q does not mention the crash", b)
	}
	if b := h.Blame([]mid.MID{{Proc: 3, Seq: 1}}); b != "" {
		t.Errorf("unblamed proc produced %q", b)
	}
}

func TestNilHookIsInert(t *testing.T) {
	var h *Hook
	if h.Crashed(0) || h.Send(0, 1).Faulty() || h.Recv(0, 1).Faulty() {
		t.Error("nil hook must inject nothing")
	}
	if h.Blame([]mid.MID{{Proc: 0, Seq: 1}}) != "" {
		t.Error("nil hook must not blame")
	}
	if evs, _ := h.Trace(); evs != nil {
		t.Error("nil hook has no trace")
	}
}

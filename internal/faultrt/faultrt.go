// Package faultrt brings the general omission failure model of Section 3
// of the paper to the wall-clock runtime (internal/rt), where internal/fault
// serves the simulator. Faults are injected at the transport boundary — the
// in-process mesh consults the injector where a datagram would cross node
// boundaries, the UDP runtime immediately before the socket write and after
// the datagram read — so every injected failure is indistinguishable, to the
// protocol, from a real network or process fault, and the protocol's
// history-based recovery, attempts counters and suicide rule do the repair.
//
// Injectors are deterministic given their construction parameters (seed
// where randomized) and the sequence of consultations: replaying the same
// consultation sequence against an injector built from the same parameters
// yields the identical verdict sequence. Under real concurrency the
// consultation sequence itself varies run to run, so end-to-end determinism
// lives one level up, in the seeded Schedule (the planned faults are a pure
// function of the seed) and in the serialized Hook trace.
//
// Time is relative: every consultation carries the elapsed duration since
// the run started, so schedules read like the paper's experiment scripts
// ("the crash occurs at 10 s", "failures occur during the first 5 rtd").
//
// Combinator scoping follows internal/fault: During and OnlyProc restrict
// the world their inner injector sees (an inner counter counts only
// in-window / own-process packets), while Multi consults every member on
// every packet. See the internal/fault package documentation for the
// rationale.
package faultrt

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"urcgc/internal/mid"
)

// Kind classifies an injected fault for counters and traces.
type Kind uint8

// Fault kinds.
const (
	KindDrop      Kind = iota // omission: the datagram is destroyed
	KindDelay                 // the datagram is held back (reordering when jittered)
	KindDuplicate             // extra copies of the datagram are delivered
	KindPartition             // omission charged to a network cut
	KindCrash                 // fail-stop of a whole process
	nKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindDuplicate:
		return "duplicate"
	case KindPartition:
		return "partition"
	case KindCrash:
		return "crash"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds returns every fault kind, for per-kind counter setup.
func Kinds() []Kind {
	out := make([]Kind, 0, nKinds)
	for k := Kind(0); k < nKinds; k++ {
		out = append(out, k)
	}
	return out
}

// KindSet is a bitmask of fault kinds.
type KindSet uint8

// Has reports whether the set contains k.
func (s KindSet) Has(k Kind) bool { return s&(1<<k) != 0 }

// With returns the set extended with k.
func (s KindSet) With(k Kind) KindSet { return s | 1<<k }

// String renders the set as "drop+delay".
func (s KindSet) String() string {
	if s == 0 {
		return "none"
	}
	var parts []string
	for k := Kind(0); k < nKinds; k++ {
		if s.Has(k) {
			parts = append(parts, k.String())
		}
	}
	return strings.Join(parts, "+")
}

// Action is an injector's verdict on one datagram. The zero Action lets the
// datagram pass untouched.
type Action struct {
	// Drop destroys the datagram (an omission).
	Drop bool
	// Delay holds the datagram back before handing it on. Combined with
	// jitter (see DelayEvery) later datagrams overtake it — the wall-clock
	// realization of reordering, which the paper's omission model does not
	// distinguish from loss-plus-recovery.
	Delay time.Duration
	// Dup is how many extra copies to deliver beyond the original.
	Dup int
	// Kinds names the fault kinds that produced this verdict, for counters.
	Kinds KindSet
}

// Faulty reports whether the action does anything at all.
func (a Action) Faulty() bool { return a.Drop || a.Delay > 0 || a.Dup > 0 }

// merge folds another verdict in (Multi semantics): any drop wins, the
// longest delay wins, duplicates accumulate, kinds union.
func (a *Action) merge(b Action) {
	a.Drop = a.Drop || b.Drop
	if b.Delay > a.Delay {
		a.Delay = b.Delay
	}
	a.Dup += b.Dup
	a.Kinds |= b.Kinds
}

// Injector decides which failures occur. The runtime consults Send for
// every datagram about to leave src for dst, Recv for every datagram about
// to be handed to dst's protocol entity, and Crashed to fail-stop whole
// processes. now is the elapsed time since the run started.
//
// Implementations need not be goroutine-safe: the Hook serializes every
// consultation (the runtime consults from several node goroutines).
type Injector interface {
	// Crashed reports whether process p has fail-stopped by elapsed time now.
	Crashed(p mid.ProcID, now time.Duration) bool
	// Send returns the verdict for a datagram src->dst at the send boundary.
	Send(src, dst mid.ProcID, now time.Duration) Action
	// Recv returns the verdict for a datagram src->dst at the receive boundary.
	Recv(src, dst mid.ProcID, now time.Duration) Action
}

// Side selects where a fault is applied, mirroring internal/fault: the
// protocol cannot distinguish the two, but the runtime hooks differ (send
// faults happen before the wire, receive faults after it).
type Side int

// Fault sides.
const (
	AtSend Side = iota // before the socket write / mesh hand-off
	AtRecv             // after the datagram read, before the protocol sees it
)

// None is the reliable network: no faults at all.
type None struct{}

// Crashed implements Injector.
func (None) Crashed(mid.ProcID, time.Duration) bool { return false }

// Send implements Injector.
func (None) Send(mid.ProcID, mid.ProcID, time.Duration) Action { return Action{} }

// Recv implements Injector.
func (None) Recv(mid.ProcID, mid.ProcID, time.Duration) Action { return Action{} }

// CrashAt fail-stops one process at a fixed elapsed time, permanently: from
// At onwards it neither sends nor receives, like a crashed site.
type CrashAt struct {
	Proc mid.ProcID
	At   time.Duration
}

// Crashed implements Injector.
func (c CrashAt) Crashed(p mid.ProcID, now time.Duration) bool {
	return p == c.Proc && now >= c.At
}

// Send implements Injector: a crashed sender emits nothing.
func (c CrashAt) Send(src, _ mid.ProcID, now time.Duration) Action {
	if c.Crashed(src, now) {
		return Action{Drop: true, Kinds: KindSet(0).With(KindCrash)}
	}
	return Action{}
}

// Recv implements Injector: a crashed receiver absorbs nothing.
func (c CrashAt) Recv(_, dst mid.ProcID, now time.Duration) Action {
	if c.Crashed(dst, now) {
		return Action{Drop: true, Kinds: KindSet(0).With(KindCrash)}
	}
	return Action{}
}

// DropEvery destroys every N-th datagram it is consulted about on its side,
// counting globally — the wall-clock twin of fault.EveryNth and the
// deterministic reading of the paper's "one omission failure each 500
// messages". N <= 0 disables it.
type DropEvery struct {
	N    int
	Side Side
	seen int
}

// Crashed implements Injector.
func (*DropEvery) Crashed(mid.ProcID, time.Duration) bool { return false }

// Send implements Injector.
func (d *DropEvery) Send(_, _ mid.ProcID, _ time.Duration) Action {
	if d.Side != AtSend {
		return Action{}
	}
	return d.tick()
}

// Recv implements Injector.
func (d *DropEvery) Recv(_, _ mid.ProcID, _ time.Duration) Action {
	if d.Side != AtRecv {
		return Action{}
	}
	return d.tick()
}

func (d *DropEvery) tick() Action {
	if d.N <= 0 {
		return Action{}
	}
	d.seen++
	if d.seen%d.N == 0 {
		return Action{Drop: true, Kinds: KindSet(0).With(KindDrop)}
	}
	return Action{}
}

// DropRate destroys datagrams independently with probability P, from its
// own seeded RNG so composed injectors do not perturb each other's streams.
type DropRate struct {
	P    float64
	Side Side
	rng  *rand.Rand
}

// NewDropRate returns a probabilistic omission injector.
func NewDropRate(p float64, side Side, seed int64) *DropRate {
	return &DropRate{P: p, Side: side, rng: rand.New(rand.NewSource(seed))}
}

// Crashed implements Injector.
func (*DropRate) Crashed(mid.ProcID, time.Duration) bool { return false }

// Send implements Injector.
func (d *DropRate) Send(_, _ mid.ProcID, _ time.Duration) Action {
	if d.Side == AtSend && d.rng.Float64() < d.P {
		return Action{Drop: true, Kinds: KindSet(0).With(KindDrop)}
	}
	return Action{}
}

// Recv implements Injector.
func (d *DropRate) Recv(_, _ mid.ProcID, _ time.Duration) Action {
	if d.Side == AtRecv && d.rng.Float64() < d.P {
		return Action{Drop: true, Kinds: KindSet(0).With(KindDrop)}
	}
	return Action{}
}

// DelayEvery holds back every N-th datagram on its side by D plus a seeded
// jitter in [0, Jitter). With nonzero jitter, delayed datagrams are
// overtaken by later ones: this is how reordering is injected — the
// protocol, built on the omission model, must treat an overtaken datagram
// exactly like a late retransmission.
type DelayEvery struct {
	N      int
	D      time.Duration
	Jitter time.Duration
	Side   Side
	rng    *rand.Rand
	seen   int
}

// NewDelayEvery returns a deterministic delay/reorder injector.
func NewDelayEvery(n int, d, jitter time.Duration, side Side, seed int64) *DelayEvery {
	return &DelayEvery{N: n, D: d, Jitter: jitter, Side: side, rng: rand.New(rand.NewSource(seed))}
}

// Crashed implements Injector.
func (*DelayEvery) Crashed(mid.ProcID, time.Duration) bool { return false }

// Send implements Injector.
func (d *DelayEvery) Send(_, _ mid.ProcID, _ time.Duration) Action {
	if d.Side != AtSend {
		return Action{}
	}
	return d.tick()
}

// Recv implements Injector.
func (d *DelayEvery) Recv(_, _ mid.ProcID, _ time.Duration) Action {
	if d.Side != AtRecv {
		return Action{}
	}
	return d.tick()
}

func (d *DelayEvery) tick() Action {
	if d.N <= 0 {
		return Action{}
	}
	d.seen++
	if d.seen%d.N != 0 {
		return Action{}
	}
	delay := d.D
	if d.Jitter > 0 && d.rng != nil {
		delay += time.Duration(d.rng.Int63n(int64(d.Jitter)))
	}
	if delay <= 0 {
		return Action{}
	}
	return Action{Delay: delay, Kinds: KindSet(0).With(KindDelay)}
}

// DupEvery delivers Copies extra copies of every N-th datagram on its side.
// The protocol's duplicate detection (history sequence numbers) must absorb
// them silently.
type DupEvery struct {
	N      int
	Copies int
	Side   Side
	seen   int
}

// Crashed implements Injector.
func (*DupEvery) Crashed(mid.ProcID, time.Duration) bool { return false }

// Send implements Injector.
func (d *DupEvery) Send(_, _ mid.ProcID, _ time.Duration) Action {
	if d.Side != AtSend {
		return Action{}
	}
	return d.tick()
}

// Recv implements Injector.
func (d *DupEvery) Recv(_, _ mid.ProcID, _ time.Duration) Action {
	if d.Side != AtRecv {
		return Action{}
	}
	return d.tick()
}

func (d *DupEvery) tick() Action {
	if d.N <= 0 {
		return Action{}
	}
	d.seen++
	if d.seen%d.N != 0 {
		return Action{}
	}
	copies := d.Copies
	if copies <= 0 {
		copies = 1
	}
	return Action{Dup: copies, Kinds: KindSet(0).With(KindDuplicate)}
}

// Partition cuts the group in two for a time window: datagrams crossing the
// cut are destroyed at the send boundary in both directions; traffic within
// a side flows normally. Heal by letting the window end. A cut shorter than
// the K detection window is just a burst of omissions (nobody is declared
// crashed); a longer one triggers the paper's split-brain behavior — each
// side excludes the other, and colliding decisions drive suicides on heal.
type Partition struct {
	From, To time.Duration
	// SideA holds the processes of one side; everyone else is on the other.
	SideA map[mid.ProcID]bool
}

// Crashed implements Injector.
func (Partition) Crashed(mid.ProcID, time.Duration) bool { return false }

// Send implements Injector.
func (p Partition) Send(src, dst mid.ProcID, now time.Duration) Action {
	if now < p.From || now >= p.To || p.SideA[src] == p.SideA[dst] {
		return Action{}
	}
	return Action{Drop: true, Kinds: KindSet(0).With(KindPartition)}
}

// Recv implements Injector.
func (Partition) Recv(mid.ProcID, mid.ProcID, time.Duration) Action { return Action{} }

// During confines an inner injector's datagram faults to the window
// [From, To). Crashes are not windowed — a crash inside the window is still
// permanent. Like fault.During, the window scopes the inner injector's
// world: outside it the inner injector is not consulted, so counter-based
// inner injectors (DropEvery, DelayEvery, DupEvery) count only in-window
// datagrams.
type During struct {
	From, To time.Duration
	Inner    Injector
}

// Crashed implements Injector.
func (d During) Crashed(p mid.ProcID, now time.Duration) bool {
	return d.Inner.Crashed(p, now)
}

// Send implements Injector.
func (d During) Send(src, dst mid.ProcID, now time.Duration) Action {
	if now < d.From || now >= d.To {
		return Action{}
	}
	return d.Inner.Send(src, dst, now)
}

// Recv implements Injector.
func (d During) Recv(src, dst mid.ProcID, now time.Duration) Action {
	if now < d.From || now >= d.To {
		return Action{}
	}
	return d.Inner.Recv(src, dst, now)
}

// OnlyProc restricts an inner injector's faults to datagrams sent by (at
// the send boundary) or addressed to (at the receive boundary) one process,
// modelling a single faulty process under the general omission model. Like
// fault.OnlyProc, the filter scopes the inner injector's world: other
// processes' datagrams are not consulted.
type OnlyProc struct {
	Proc  mid.ProcID
	Inner Injector
}

// Crashed implements Injector.
func (o OnlyProc) Crashed(p mid.ProcID, now time.Duration) bool {
	return o.Inner.Crashed(p, now)
}

// Send implements Injector.
func (o OnlyProc) Send(src, dst mid.ProcID, now time.Duration) Action {
	if src != o.Proc {
		return Action{}
	}
	return o.Inner.Send(src, dst, now)
}

// Recv implements Injector.
func (o OnlyProc) Recv(src, dst mid.ProcID, now time.Duration) Action {
	if dst != o.Proc {
		return Action{}
	}
	return o.Inner.Recv(src, dst, now)
}

// Multi composes injectors. Every member is consulted on every datagram —
// the fault.Multi contract — so counter-based members advance consistently
// regardless of composition order; the verdicts merge (any drop wins, the
// longest delay wins, duplicates accumulate).
type Multi []Injector

// Crashed implements Injector.
func (m Multi) Crashed(p mid.ProcID, now time.Duration) bool {
	crashed := false
	for _, in := range m {
		if in.Crashed(p, now) {
			crashed = true
		}
	}
	return crashed
}

// Send implements Injector.
func (m Multi) Send(src, dst mid.ProcID, now time.Duration) Action {
	var act Action
	for _, in := range m {
		act.merge(in.Send(src, dst, now))
	}
	return act
}

// Recv implements Injector.
func (m Multi) Recv(src, dst mid.ProcID, now time.Duration) Action {
	var act Action
	for _, in := range m {
		act.merge(in.Recv(src, dst, now))
	}
	return act
}

// Crashes builds one CrashAt per entry of schedule, in deterministic
// (ProcID) order so rng-bearing compositions replay identically.
func Crashes(schedule map[mid.ProcID]time.Duration) Multi {
	procs := make([]mid.ProcID, 0, len(schedule))
	for p := range schedule {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	m := make(Multi, 0, len(procs))
	for _, p := range procs {
		m = append(m, CrashAt{Proc: p, At: schedule[p]})
	}
	return m
}

package faultrt

import (
	"fmt"
	"sort"
	"sync"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// Violation is one invariant breach found by the Checker.
type Violation struct {
	// Invariant names the broken property: "uniform-atomicity" or
	// "uniform-ordering".
	Invariant string
	// Node is the member at which the breach was observed.
	Node mid.ProcID
	// Msg is the message involved.
	Msg mid.MID
	// Detail explains the breach.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: node %d, %v: %s", v.Invariant, v.Node, v.Msg, v.Detail)
}

// checkerEntry is one processing event: the message and its declared
// cross-sequence dependencies (the implicit same-sequence predecessor is
// derived from the MID).
type checkerEntry struct {
	id   mid.MID
	deps mid.DepList
}

// Checker records every member's processed sequence during a chaos run and
// asserts, after churn, the paper's two uniform properties:
//
//   - Uniform Atomicity (Definition 3.2): every message processed by any
//     surviving member was processed by all surviving members — decided
//     messages are delivered everywhere or nowhere.
//   - Uniform Ordering (Definition 3.1): at every member, a message was
//     processed only after every message it causally depends on — its
//     declared dependencies and its same-sequence predecessor.
//
// Feed it from each member's indication stream (or OnProcess callback);
// Record is safe for concurrent use. Check is meant for after the run.
type Checker struct {
	mu   sync.Mutex
	logs map[mid.ProcID][]checkerEntry
}

// NewChecker returns an empty history recorder.
func NewChecker() *Checker {
	return &Checker{logs: make(map[mid.ProcID][]checkerEntry)}
}

// Record appends one processed message to node's history, cloning the
// dependency list.
func (c *Checker) Record(node mid.ProcID, m *causal.Message) {
	c.mu.Lock()
	c.logs[node] = append(c.logs[node], checkerEntry{id: m.ID, deps: m.Deps.Clone()})
	c.mu.Unlock()
}

// Recorded returns how many processing events node has on record.
func (c *Checker) Recorded(node mid.ProcID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.logs[node])
}

// Check verifies both invariants: ordering over every recorded member
// (crashed members' prefixes must be causally ordered too), atomicity over
// the surviving members only — a crashed member legitimately stops
// mid-prefix. Returns every violation found, nil when the run was clean.
func (c *Checker) Check(survivors []mid.ProcID) []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Violation
	out = append(out, c.orderingLocked()...)
	out = append(out, c.atomicityLocked(survivors)...)
	return out
}

// orderingLocked asserts Uniform Ordering and no double processing at
// every recorded member.
func (c *Checker) orderingLocked() []Violation {
	var out []Violation
	nodes := make([]mid.ProcID, 0, len(c.logs))
	for n := range c.logs {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, node := range nodes {
		done := make(map[mid.MID]bool, len(c.logs[node]))
		for _, e := range c.logs[node] {
			if done[e.id] {
				out = append(out, Violation{
					Invariant: "uniform-ordering", Node: node, Msg: e.id,
					Detail: "processed twice",
				})
				continue
			}
			if prev := e.id.Prev(); !prev.IsZero() && !done[prev] {
				out = append(out, Violation{
					Invariant: "uniform-ordering", Node: node, Msg: e.id,
					Detail: fmt.Sprintf("sequence predecessor %v not processed first", prev),
				})
			}
			for _, d := range e.deps {
				if !done[d] {
					out = append(out, Violation{
						Invariant: "uniform-ordering", Node: node, Msg: e.id,
						Detail: fmt.Sprintf("dependency %v not processed first", d),
					})
				}
			}
			done[e.id] = true
		}
	}
	return out
}

// atomicityLocked asserts that the surviving members processed exactly the
// same message set.
func (c *Checker) atomicityLocked(survivors []mid.ProcID) []Violation {
	var out []Violation
	union := make(map[mid.MID]mid.ProcID) // message -> one survivor that processed it
	perNode := make(map[mid.ProcID]map[mid.MID]bool, len(survivors))
	for _, node := range survivors {
		set := make(map[mid.MID]bool, len(c.logs[node]))
		for _, e := range c.logs[node] {
			set[e.id] = true
			if _, ok := union[e.id]; !ok {
				union[e.id] = node
			}
		}
		perNode[node] = set
	}
	// Deterministic report order.
	all := make([]mid.MID, 0, len(union))
	for m := range union {
		all = append(all, m)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
	sorted := append([]mid.ProcID(nil), survivors...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, m := range all {
		for _, node := range sorted {
			if !perNode[node][m] {
				out = append(out, Violation{
					Invariant: "uniform-atomicity", Node: node, Msg: m,
					Detail: fmt.Sprintf("processed at survivor %d but not here", union[m]),
				})
			}
		}
	}
	return out
}

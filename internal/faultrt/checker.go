package faultrt

import (
	"fmt"
	"sort"
	"sync"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// Violation is one invariant breach found by the Checker.
type Violation struct {
	// Invariant names the broken property: "uniform-atomicity" or
	// "uniform-ordering".
	Invariant string
	// Node is the member at which the breach was observed.
	Node mid.ProcID
	// Msg is the message involved.
	Msg mid.MID
	// Detail explains the breach.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: node %d, %v: %s", v.Invariant, v.Node, v.Msg, v.Detail)
}

// checkerEntry is one processing event: the message and its declared
// cross-sequence dependencies (the implicit same-sequence predecessor is
// derived from the MID).
type checkerEntry struct {
	id   mid.MID
	deps mid.DepList
}

// incarnation is one lifetime of a member: its processing log plus the
// stability baseline it joined at. The baseline is nil for a member's first
// incarnation (it was present at group birth and owes the full prefix);
// for a rejoined incarnation it is the stable vector installed by the state
// transfer — everything at or below it was uniformly stable before the
// incarnation existed, so the invariants treat that prefix as processed.
type incarnation struct {
	entries  []checkerEntry
	baseline mid.SeqVector
}

// covered reports whether m lies in the incarnation's exempt prefix.
func (in *incarnation) covered(m mid.MID) bool {
	return in.baseline != nil && int(m.Proc) < len(in.baseline) &&
		m.Seq <= in.baseline[m.Proc]
}

// Checker records every member's processed sequence during a chaos run and
// asserts, after churn, the paper's two uniform properties:
//
//   - Uniform Atomicity (Definition 3.2): every message processed by any
//     surviving member was processed by all surviving members — decided
//     messages are delivered everywhere or nowhere.
//   - Uniform Ordering (Definition 3.1): at every member, a message was
//     processed only after every message it causally depends on — its
//     declared dependencies and its same-sequence predecessor.
//
// Members may die and rejoin: Restart closes the current incarnation's log
// and opens a fresh one anchored at the join baseline. Ordering is checked
// within every incarnation, live or archived (a crashed prefix must be
// causally ordered too); atomicity compares survivors' live incarnations,
// exempting each one's pre-join baseline.
//
// Feed it from each member's indication stream (or OnProcess callback);
// Record is safe for concurrent use. Check is meant for after the run.
type Checker struct {
	mu       sync.Mutex
	live     map[mid.ProcID]*incarnation
	archived map[mid.ProcID][]*incarnation
}

// NewChecker returns an empty history recorder.
func NewChecker() *Checker {
	return &Checker{
		live:     make(map[mid.ProcID]*incarnation),
		archived: make(map[mid.ProcID][]*incarnation),
	}
}

func (c *Checker) liveFor(node mid.ProcID) *incarnation {
	in := c.live[node]
	if in == nil {
		in = &incarnation{}
		c.live[node] = in
	}
	return in
}

// Record appends one processed message to node's current incarnation,
// cloning the dependency list.
func (c *Checker) Record(node mid.ProcID, m *causal.Message) {
	c.mu.Lock()
	in := c.liveFor(node)
	in.entries = append(in.entries, checkerEntry{id: m.ID, deps: m.Deps.Clone()})
	c.mu.Unlock()
}

// Recorded returns how many processing events node's current incarnation
// has on record.
func (c *Checker) Recorded(node mid.ProcID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if in := c.live[node]; in != nil {
		return len(in.entries)
	}
	return 0
}

// Restart archives node's current incarnation and opens a fresh one with
// the given join baseline — the stable vector the state transfer installed.
// Call it when the rejoined incarnation installs its snapshot (the joiner
// processes nothing before that, so any earlier call timing that still
// precedes the first post-join Record is equivalent). The archived prefix
// stays ordering-checked; atomicity moves to the new incarnation, with the
// baseline prefix exempt.
func (c *Checker) Restart(node mid.ProcID, baseline mid.SeqVector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if in := c.live[node]; in != nil && len(in.entries) > 0 {
		c.archived[node] = append(c.archived[node], in)
	}
	c.live[node] = &incarnation{baseline: baseline.Clone()}
}

// FastForward raises node's baseline entry for proc to at least seq: the
// recovery machinery told the rejoined incarnation that proc's sequence
// through seq was purged as uniformly stable, and the incarnation skipped
// its frontier over the gap instead of processing it.
func (c *Checker) FastForward(node mid.ProcID, proc mid.ProcID, seq mid.Seq) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in := c.liveFor(node)
	if int(proc) < 0 {
		return
	}
	for len(in.baseline) <= int(proc) {
		in.baseline = append(in.baseline, 0)
	}
	if seq > in.baseline[proc] {
		in.baseline[proc] = seq
	}
}

// Check verifies both invariants: ordering over every recorded incarnation
// (crashed and pre-restart prefixes must be causally ordered too),
// atomicity over the surviving members' live incarnations only — a crashed
// member legitimately stops mid-prefix, and a rejoined one legitimately
// starts past its baseline. Returns every violation found, nil when the
// run was clean.
func (c *Checker) Check(survivors []mid.ProcID) []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Violation
	out = append(out, c.orderingLocked()...)
	out = append(out, c.atomicityLocked(survivors)...)
	return out
}

// orderingLocked asserts Uniform Ordering and no double processing within
// every incarnation of every recorded member.
func (c *Checker) orderingLocked() []Violation {
	var out []Violation
	nodes := make(map[mid.ProcID]bool, len(c.live))
	for n := range c.live {
		nodes[n] = true
	}
	for n := range c.archived {
		nodes[n] = true
	}
	sorted := make([]mid.ProcID, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, node := range sorted {
		for _, in := range c.archived[node] {
			out = append(out, c.orderingOne(node, in)...)
		}
		if in := c.live[node]; in != nil {
			out = append(out, c.orderingOne(node, in)...)
		}
	}
	return out
}

// orderingOne checks one incarnation's log. Dependencies at or below the
// incarnation's baseline were uniformly stable before it existed and count
// as processed.
func (c *Checker) orderingOne(node mid.ProcID, in *incarnation) []Violation {
	var out []Violation
	done := make(map[mid.MID]bool, len(in.entries))
	have := func(m mid.MID) bool { return done[m] || in.covered(m) }
	for _, e := range in.entries {
		if done[e.id] {
			out = append(out, Violation{
				Invariant: "uniform-ordering", Node: node, Msg: e.id,
				Detail: "processed twice",
			})
			continue
		}
		if in.covered(e.id) {
			out = append(out, Violation{
				Invariant: "uniform-ordering", Node: node, Msg: e.id,
				Detail: "processed below the join baseline",
			})
		}
		if prev := e.id.Prev(); !prev.IsZero() && !have(prev) {
			out = append(out, Violation{
				Invariant: "uniform-ordering", Node: node, Msg: e.id,
				Detail: fmt.Sprintf("sequence predecessor %v not processed first", prev),
			})
		}
		for _, d := range e.deps {
			if !have(d) {
				out = append(out, Violation{
					Invariant: "uniform-ordering", Node: node, Msg: e.id,
					Detail: fmt.Sprintf("dependency %v not processed first", d),
				})
			}
		}
		done[e.id] = true
	}
	return out
}

// atomicityLocked asserts that the surviving members' live incarnations
// processed the same message set, minus each incarnation's exempt baseline
// prefix.
func (c *Checker) atomicityLocked(survivors []mid.ProcID) []Violation {
	var out []Violation
	union := make(map[mid.MID]mid.ProcID) // message -> one survivor that processed it
	perNode := make(map[mid.ProcID]map[mid.MID]bool, len(survivors))
	for _, node := range survivors {
		in := c.live[node]
		if in == nil {
			perNode[node] = nil
			continue
		}
		set := make(map[mid.MID]bool, len(in.entries))
		for _, e := range in.entries {
			set[e.id] = true
			if _, ok := union[e.id]; !ok {
				union[e.id] = node
			}
		}
		perNode[node] = set
	}
	// Deterministic report order.
	all := make([]mid.MID, 0, len(union))
	for m := range union {
		all = append(all, m)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
	sorted := append([]mid.ProcID(nil), survivors...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, m := range all {
		for _, node := range sorted {
			if perNode[node][m] {
				continue
			}
			if in := c.live[node]; in != nil && in.covered(m) {
				continue
			}
			out = append(out, Violation{
				Invariant: "uniform-atomicity", Node: node, Msg: m,
				Detail: fmt.Sprintf("processed at survivor %d but not here", union[m]),
			})
		}
	}
	return out
}

package faultrt

import (
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

func msg(proc mid.ProcID, seq mid.Seq, deps ...mid.MID) *causal.Message {
	return &causal.Message{ID: mid.MID{Proc: proc, Seq: seq}, Deps: mid.DepList(deps)}
}

func TestCheckerCleanHistoryPasses(t *testing.T) {
	c := NewChecker()
	a1 := msg(0, 1)
	b1 := msg(1, 1, a1.ID) // b1 causally after a1
	a2 := msg(0, 2)
	for _, node := range []mid.ProcID{0, 1, 2} {
		c.Record(node, a1)
		c.Record(node, b1)
		c.Record(node, a2)
	}
	if v := c.Check([]mid.ProcID{0, 1, 2}); len(v) != 0 {
		t.Fatalf("clean history flagged: %v", v)
	}
}

func TestCheckerCrashedPrefixIsLegal(t *testing.T) {
	c := NewChecker()
	a1, a2 := msg(0, 1), msg(0, 2)
	c.Record(0, a1)
	c.Record(0, a2)
	c.Record(1, a1)
	c.Record(1, a2)
	c.Record(2, a1) // node 2 crashed before a2: a clean prefix
	if v := c.Check([]mid.ProcID{0, 1}); len(v) != 0 {
		t.Fatalf("crashed member's prefix flagged: %v", v)
	}
}

func TestCheckerCatchesAtomicityViolation(t *testing.T) {
	c := NewChecker()
	a1 := msg(0, 1)
	c.Record(0, a1)
	// Survivor 1 never processed a1: decided-but-not-everywhere.
	v := c.Check([]mid.ProcID{0, 1})
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly one", v)
	}
	if v[0].Invariant != "uniform-atomicity" || v[0].Node != 1 || v[0].Msg != a1.ID {
		t.Errorf("violation = %+v", v[0])
	}
}

func TestCheckerCatchesOrderingViolation(t *testing.T) {
	c := NewChecker()
	a1 := msg(0, 1)
	b1 := msg(1, 1, a1.ID)
	// Node 0 processes the dependent before its dependency.
	c.Record(0, b1)
	c.Record(0, a1)
	c.Record(1, a1)
	c.Record(1, b1)
	v := c.Check([]mid.ProcID{0, 1})
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly one", v)
	}
	if v[0].Invariant != "uniform-ordering" || v[0].Node != 0 || v[0].Msg != b1.ID {
		t.Errorf("violation = %+v", v[0])
	}
}

func TestCheckerCatchesSequenceGap(t *testing.T) {
	c := NewChecker()
	a2 := msg(0, 2) // (0,1) never processed: FIFO hole
	c.Record(0, a2)
	v := c.Check([]mid.ProcID{0})
	if len(v) != 1 || v[0].Invariant != "uniform-ordering" {
		t.Fatalf("violations = %v, want one ordering breach", v)
	}
}

func TestCheckerCatchesDoubleProcessing(t *testing.T) {
	c := NewChecker()
	a1 := msg(0, 1)
	c.Record(0, a1)
	c.Record(0, a1)
	v := c.Check([]mid.ProcID{0})
	if len(v) != 1 || v[0].Detail != "processed twice" {
		t.Fatalf("violations = %v, want one double-processing breach", v)
	}
}

// TestCheckerRestartBaseline: a rejoined incarnation that resumes past its
// join baseline is clean — the baseline prefix is exempt from atomicity and
// satisfies dependencies — while processing below the baseline, or skipping
// a message above it, is still flagged.
func TestCheckerRestartBaseline(t *testing.T) {
	c := NewChecker()
	a1, a2, a3 := msg(0, 1), msg(0, 2), msg(0, 3)
	b1 := msg(1, 1, a2.ID)
	for _, node := range []mid.ProcID{0, 1} {
		for _, m := range []*causal.Message{a1, a2, a3, b1} {
			c.Record(node, m)
		}
	}
	// Node 2 processed a1, died, rejoined at baseline {2,0,0}: its new
	// incarnation owes only a3 and b1 (whose dep a2 the baseline covers).
	c.Record(2, a1)
	c.Restart(2, mid.SeqVector{2, 0, 0})
	c.Record(2, a3)
	c.Record(2, b1)
	if v := c.Check([]mid.ProcID{0, 1, 2}); len(v) != 0 {
		t.Fatalf("clean rejoin flagged: %v", v)
	}

	// Skipping a post-baseline message is an atomicity breach again.
	c2 := NewChecker()
	c2.Record(0, a1)
	c2.Record(0, a2)
	c2.Record(0, a3)
	c2.Restart(1, mid.SeqVector{2, 0})
	v := c2.Check([]mid.ProcID{0, 1})
	if len(v) != 1 || v[0].Invariant != "uniform-atomicity" || v[0].Msg != a3.ID {
		t.Fatalf("violations = %v, want a3 missing at node 1", v)
	}

	// Processing below the own baseline is an ordering breach (the join
	// install must have skipped it).
	c3 := NewChecker()
	c3.Restart(0, mid.SeqVector{2})
	c3.Record(0, a1)
	v = c3.Check(nil)
	if len(v) != 1 || v[0].Detail != "processed below the join baseline" {
		t.Fatalf("violations = %v, want below-baseline breach", v)
	}
}

// TestCheckerArchivedOrderingStillChecked: the pre-restart incarnation's
// log keeps being ordering-checked after the member rejoins.
func TestCheckerArchivedOrderingStillChecked(t *testing.T) {
	c := NewChecker()
	a1 := msg(0, 1)
	b1 := msg(1, 1, a1.ID)
	c.Record(0, b1) // dependency violation in the first incarnation
	c.Restart(0, mid.SeqVector{1, 1})
	v := c.Check([]mid.ProcID{0})
	if len(v) != 1 || v[0].Invariant != "uniform-ordering" || v[0].Msg != b1.ID {
		t.Fatalf("violations = %v, want archived ordering breach", v)
	}
	_ = a1
}

// TestCheckerFastForward: a recovery-driven skip raises the baseline so the
// skipped range stops counting against atomicity and satisfies deps.
func TestCheckerFastForward(t *testing.T) {
	c := NewChecker()
	a1, a2, a3 := msg(0, 1), msg(0, 2), msg(0, 3)
	c.Record(0, a1)
	c.Record(0, a2)
	c.Record(0, a3)
	c.Restart(1, mid.SeqVector{1, 0})
	c.FastForward(1, 0, 2) // (0,2) purged at the responder: skipped
	c.Record(1, a3)
	if v := c.Check([]mid.ProcID{0, 1}); len(v) != 0 {
		t.Fatalf("fast-forwarded rejoin flagged: %v", v)
	}
}

package faultrt

import (
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

func msg(proc mid.ProcID, seq mid.Seq, deps ...mid.MID) *causal.Message {
	return &causal.Message{ID: mid.MID{Proc: proc, Seq: seq}, Deps: mid.DepList(deps)}
}

func TestCheckerCleanHistoryPasses(t *testing.T) {
	c := NewChecker()
	a1 := msg(0, 1)
	b1 := msg(1, 1, a1.ID) // b1 causally after a1
	a2 := msg(0, 2)
	for _, node := range []mid.ProcID{0, 1, 2} {
		c.Record(node, a1)
		c.Record(node, b1)
		c.Record(node, a2)
	}
	if v := c.Check([]mid.ProcID{0, 1, 2}); len(v) != 0 {
		t.Fatalf("clean history flagged: %v", v)
	}
}

func TestCheckerCrashedPrefixIsLegal(t *testing.T) {
	c := NewChecker()
	a1, a2 := msg(0, 1), msg(0, 2)
	c.Record(0, a1)
	c.Record(0, a2)
	c.Record(1, a1)
	c.Record(1, a2)
	c.Record(2, a1) // node 2 crashed before a2: a clean prefix
	if v := c.Check([]mid.ProcID{0, 1}); len(v) != 0 {
		t.Fatalf("crashed member's prefix flagged: %v", v)
	}
}

func TestCheckerCatchesAtomicityViolation(t *testing.T) {
	c := NewChecker()
	a1 := msg(0, 1)
	c.Record(0, a1)
	// Survivor 1 never processed a1: decided-but-not-everywhere.
	v := c.Check([]mid.ProcID{0, 1})
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly one", v)
	}
	if v[0].Invariant != "uniform-atomicity" || v[0].Node != 1 || v[0].Msg != a1.ID {
		t.Errorf("violation = %+v", v[0])
	}
}

func TestCheckerCatchesOrderingViolation(t *testing.T) {
	c := NewChecker()
	a1 := msg(0, 1)
	b1 := msg(1, 1, a1.ID)
	// Node 0 processes the dependent before its dependency.
	c.Record(0, b1)
	c.Record(0, a1)
	c.Record(1, a1)
	c.Record(1, b1)
	v := c.Check([]mid.ProcID{0, 1})
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly one", v)
	}
	if v[0].Invariant != "uniform-ordering" || v[0].Node != 0 || v[0].Msg != b1.ID {
		t.Errorf("violation = %+v", v[0])
	}
}

func TestCheckerCatchesSequenceGap(t *testing.T) {
	c := NewChecker()
	a2 := msg(0, 2) // (0,1) never processed: FIFO hole
	c.Record(0, a2)
	v := c.Check([]mid.ProcID{0})
	if len(v) != 1 || v[0].Invariant != "uniform-ordering" {
		t.Fatalf("violations = %v, want one ordering breach", v)
	}
}

func TestCheckerCatchesDoubleProcessing(t *testing.T) {
	c := NewChecker()
	a1 := msg(0, 1)
	c.Record(0, a1)
	c.Record(0, a1)
	v := c.Check([]mid.ProcID{0})
	if len(v) != 1 || v[0].Detail != "processed twice" {
		t.Fatalf("violations = %v, want one double-processing breach", v)
	}
}

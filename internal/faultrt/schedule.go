package faultrt

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"urcgc/internal/mid"
)

// Burst is one window of 1/Nth omissions.
type Burst struct {
	From, To time.Duration
	Nth      int // drop every Nth datagram inside the window
}

// Schedule is a deterministic chaos plan expanded from a seed: one crash,
// one healed partition, omission bursts, and background delay/duplication.
// The expansion is a pure function of the parameters, so re-running with
// the same seed yields the identical planned-fault trace (String) even
// though wall-clock consultation interleavings differ run to run.
type Schedule struct {
	Seed     int64
	N        int
	Duration time.Duration
	Round    time.Duration // the runtime's round length (subrun = 2 rounds)
	K        int           // the protocol's silence threshold

	// CrashProc fail-stops at CrashAt; the group's embedded decision
	// mechanism must detect and exclude it without suspending processing.
	CrashProc mid.ProcID
	CrashAt   time.Duration

	// The partition window is kept shorter than K subruns, so it heals as a
	// burst of omissions: nobody is declared crashed, and every message
	// crossing the healed cut is recovered from history (the paper's
	// Section 3 general-omission reading of a transient network cut).
	PartFrom, PartTo time.Duration
	PartSideA        map[mid.ProcID]bool

	// Bursts are the "1 omission each Nth message" windows of Figure 4.
	Bursts []Burst

	// Background delay (reordering) and duplication, full-run.
	DelayNth  int
	DelayBy   time.Duration
	DelayJit  time.Duration
	DupNth    int
}

// NewSchedule expands a seed into a chaos plan for an n-member group
// running with the given round length and silence threshold K over the
// given fault-phase duration.
func NewSchedule(seed int64, n int, duration, round time.Duration, k int) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{
		Seed: seed, N: n, Duration: duration, Round: round, K: k,
	}
	frac := func(lo, hi float64) time.Duration {
		return time.Duration((lo + (hi-lo)*rng.Float64()) * float64(duration))
	}

	// One crash, early enough that detection, exclusion and post-crash
	// recovery all happen inside the run.
	s.CrashProc = mid.ProcID(rng.Intn(n))
	s.CrashAt = frac(0.25, 0.40)

	// One healed partition: strictly shorter than K subruns (a subrun is
	// two rounds), placed after the crash settles.
	subrun := 2 * round
	maxCut := time.Duration(k-1) * subrun
	if maxCut < subrun {
		maxCut = subrun
	}
	s.PartFrom = frac(0.55, 0.65)
	s.PartTo = s.PartFrom + maxCut
	s.PartSideA = make(map[mid.ProcID]bool)
	sideA := 1
	if n > 3 {
		sideA += rng.Intn(n/2 - 1 + 1) // 1..n/2 members on the small side
	}
	for len(s.PartSideA) < sideA {
		s.PartSideA[mid.ProcID(rng.Intn(n))] = true
	}

	// Two omission bursts at 1/100, one before and one after the cut.
	s.Bursts = []Burst{
		{From: frac(0.05, 0.10), Nth: 100},
		{From: frac(0.75, 0.85), Nth: 100},
	}
	for i := range s.Bursts {
		s.Bursts[i].To = s.Bursts[i].From + duration/10
	}

	// Background reordering and duplication at low, co-prime cadences so
	// they never lock phase with the bursts.
	s.DelayNth = 97
	s.DelayBy = round / 2
	s.DelayJit = 2 * round
	s.DupNth = 131
	return s
}

// Injector builds a fresh composed injector realizing the plan. Counter
// state lives in the returned injector, so each call starts a new replay.
func (s *Schedule) Injector() Injector {
	m := Multi{
		CrashAt{Proc: s.CrashProc, At: s.CrashAt},
		Partition{From: s.PartFrom, To: s.PartTo, SideA: s.PartSideA},
	}
	for _, b := range s.Bursts {
		m = append(m, During{From: b.From, To: b.To,
			Inner: &DropEvery{N: b.Nth, Side: AtSend}})
	}
	if s.DelayNth > 0 {
		m = append(m, NewDelayEvery(s.DelayNth, s.DelayBy, s.DelayJit, AtRecv, s.Seed+1))
	}
	if s.DupNth > 0 {
		m = append(m, &DupEvery{N: s.DupNth, Copies: 1, Side: AtSend})
	}
	return m
}

// String renders the plan — the seed-deterministic fault trace a soak run
// re-produces identically under the same seed.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d n=%d duration=%v round=%v k=%d\n",
		s.Seed, s.N, s.Duration, s.Round, s.K)
	fmt.Fprintf(&b, "  crash p%d at %v\n", s.CrashProc, s.CrashAt.Round(time.Millisecond))
	var sideA []string
	for p := mid.ProcID(0); int(p) < s.N; p++ {
		if s.PartSideA[p] {
			sideA = append(sideA, fmt.Sprintf("p%d", p))
		}
	}
	fmt.Fprintf(&b, "  partition {%s} from %v to %v (heals)\n",
		strings.Join(sideA, ","), s.PartFrom.Round(time.Millisecond), s.PartTo.Round(time.Millisecond))
	for _, burst := range s.Bursts {
		fmt.Fprintf(&b, "  omission burst 1/%d from %v to %v\n",
			burst.Nth, burst.From.Round(time.Millisecond), burst.To.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "  delay every %d recvs by %v+[0,%v) (reordering)\n",
		s.DelayNth, s.DelayBy, s.DelayJit)
	fmt.Fprintf(&b, "  duplicate every %d sends\n", s.DupNth)
	return b.String()
}

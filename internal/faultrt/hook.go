package faultrt

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"urcgc/internal/mid"
	"urcgc/internal/obs"
)

// Event is one injected fault, recorded by the Hook in consultation order.
type Event struct {
	Seq   int           // 0-based position in the hook's injected-fault trace
	At    time.Duration // elapsed run time of the consultation
	Op    string        // "send", "recv" or "crash"
	Src   mid.ProcID
	Dst   mid.ProcID // mid.None for crash events
	Kinds KindSet
}

// String renders the event without its wall-clock offset, so traces from
// replayed consultation sequences compare byte-for-byte.
func (e Event) String() string {
	if e.Op == "crash" {
		return fmt.Sprintf("%d crash p%d", e.Seq, e.Src)
	}
	return fmt.Sprintf("%d %s %d->%d %s", e.Seq, e.Op, e.Src, e.Dst, e.Kinds)
}

// blameRec summarizes the faults charged against one process, so a stuck
// lifecycle span can name what is starving it.
type blameRec struct {
	drops, delays, dups int64
	crashedAt           time.Duration
	crashed             bool
	lastKinds           KindSet
	lastAt              time.Duration
}

// Hook is the runtime-facing front of an Injector: it serializes
// consultations (node goroutines consult concurrently), stamps them with
// the elapsed run clock, counts them per kind — exported as
// faultrt_injected_total{kind="..."} when a registry is given — records a
// bounded injected-fault trace, and keeps per-process blame summaries for
// the lifecycle watchdog. A nil *Hook is valid and injects nothing, so the
// runtime threads it without branching.
type Hook struct {
	// OnCrash, when non-nil, fires once per process on its first crashed
	// verdict, after the hook's lock is released — the chaos harness uses
	// it to put a crash mark on the member's capture ring, so an offline
	// replay can derive the survivor set from the dumps alone. Set it
	// before the hook is shared with the runtime.
	OnCrash func(p mid.ProcID, at time.Duration)

	mu  sync.Mutex
	inj Injector

	// now returns the elapsed run time; defaults to wall clock since
	// NewHook. Tests substitute a deterministic clock.
	now   func() time.Duration
	start time.Time

	trace    []Event
	traceCap int
	dropped  int64 // trace events beyond traceCap
	injected [nKinds]int64
	counters [nKinds]*obs.Counter
	events   *obs.EventLog

	blame     map[mid.ProcID]*blameRec
	crashSeen map[mid.ProcID]bool
}

// defaultTraceCap bounds the retained injected-fault trace.
const defaultTraceCap = 8192

// NewHook wraps an injector for use by the runtime. reg, when non-nil,
// receives the per-kind counters (faultrt_injected_total{kind}) and its
// event log gets one line per injected fault, interleaving with the
// lifecycle watchdog's stuck-span flags. The elapsed clock starts now.
func NewHook(inj Injector, reg *obs.Registry) *Hook {
	h := &Hook{
		inj:       inj,
		start:     time.Now(),
		traceCap:  defaultTraceCap,
		blame:     make(map[mid.ProcID]*blameRec),
		crashSeen: make(map[mid.ProcID]bool),
	}
	h.now = func() time.Duration { return time.Since(h.start) }
	if reg != nil {
		h.events = reg.Events()
		for k := Kind(0); k < nKinds; k++ {
			h.counters[k] = reg.Counter(obs.Labeled("faultrt_injected_total", "kind", k.String()))
		}
	}
	return h
}

// Elapsed returns the hook's run clock.
func (h *Hook) Elapsed() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.now()
}

// Crashed reports whether process p has fail-stopped. The first true
// verdict per process is recorded as a crash event and counted.
func (h *Hook) Crashed(p mid.ProcID) bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	now := h.now()
	if !h.inj.Crashed(p, now) {
		h.mu.Unlock()
		return false
	}
	first := false
	if !h.crashSeen[p] {
		h.crashSeen[p] = true
		r := h.blameFor(p)
		r.crashed = true
		r.crashedAt = now
		h.record(Event{At: now, Op: "crash", Src: p, Dst: mid.None,
			Kinds: KindSet(0).With(KindCrash)})
		first = true
	}
	onCrash := h.OnCrash
	h.mu.Unlock()
	if first && onCrash != nil {
		onCrash(p, now)
	}
	return true
}

// Send returns the verdict for a datagram src->dst at the send boundary,
// recording and counting any injected fault.
func (h *Hook) Send(src, dst mid.ProcID) Action {
	if h == nil {
		return Action{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	act := h.inj.Send(src, dst, now)
	if act.Faulty() {
		h.charge(src, now, act)
		h.record(Event{At: now, Op: "send", Src: src, Dst: dst, Kinds: act.Kinds})
	}
	return act
}

// Recv returns the verdict for a datagram src->dst at the receive boundary,
// recording and counting any injected fault.
func (h *Hook) Recv(src, dst mid.ProcID) Action {
	if h == nil {
		return Action{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	act := h.inj.Recv(src, dst, now)
	if act.Faulty() {
		// Receive faults starve the sender's messages: charge the source,
		// whose MIDs are what a stuck span will be blocked on.
		h.charge(src, now, act)
		h.record(Event{At: now, Op: "recv", Src: src, Dst: dst, Kinds: act.Kinds})
	}
	return act
}

// charge updates the per-source blame record. Callers hold h.mu.
func (h *Hook) charge(src mid.ProcID, now time.Duration, act Action) {
	r := h.blameFor(src)
	if act.Drop {
		r.drops++
	}
	if act.Delay > 0 {
		r.delays++
	}
	if act.Dup > 0 {
		r.dups++
	}
	r.lastKinds = act.Kinds
	r.lastAt = now
}

func (h *Hook) blameFor(p mid.ProcID) *blameRec {
	r := h.blame[p]
	if r == nil {
		r = &blameRec{}
		h.blame[p] = r
	}
	return r
}

// record appends one trace event and bumps the per-kind counters. Callers
// hold h.mu.
func (h *Hook) record(e Event) {
	for k := Kind(0); k < nKinds; k++ {
		if !e.Kinds.Has(k) {
			continue
		}
		h.injected[k]++
		if h.counters[k] != nil {
			h.counters[k].Inc()
		}
	}
	e.Seq = len(h.trace) + int(h.dropped)
	if len(h.trace) < h.traceCap {
		h.trace = append(h.trace, e)
	} else {
		h.dropped++
	}
	if h.events != nil {
		if e.Op == "crash" {
			h.events.Addf("faultrt: crash p%d at %v", e.Src, e.At.Round(time.Millisecond))
		} else {
			h.events.Addf("faultrt: %s %s %d->%d at %v", e.Kinds, e.Op, e.Src, e.Dst,
				e.At.Round(time.Millisecond))
		}
	}
}

// Trace returns a copy of the retained injected-fault trace, in injection
// order, plus how many events overflowed the retention cap.
func (h *Hook) Trace() ([]Event, int64) {
	if h == nil {
		return nil, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.trace...), h.dropped
}

// TraceString renders the retained trace one event per line, without
// wall-clock offsets, for byte-comparable determinism checks.
func (h *Hook) TraceString() string {
	evs, _ := h.Trace()
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Injected returns the per-kind injected-fault counts.
func (h *Hook) Injected() map[string]int64 {
	out := make(map[string]int64, nKinds)
	if h == nil {
		return out
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for k := Kind(0); k < nKinds; k++ {
		out[k.String()] = h.injected[k]
	}
	return out
}

// Blame summarizes, for the processes rooting the given blocking MIDs, the
// faults injected against them — the lifecycle watchdog appends it to a
// stuck span's flag so the log names the injected fault that starved the
// span. Returns "" when no blamed process has any fault on record.
func (h *Hook) Blame(blocking []mid.MID) string {
	if h == nil || len(blocking) == 0 {
		return ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := make(map[mid.ProcID]bool, len(blocking))
	var parts []string
	for _, m := range blocking {
		if seen[m.Proc] {
			continue
		}
		seen[m.Proc] = true
		r := h.blame[m.Proc]
		if r == nil {
			continue
		}
		var frag []string
		if r.crashed {
			frag = append(frag, fmt.Sprintf("crashed at %v", r.crashedAt.Round(time.Millisecond)))
		}
		if r.drops > 0 {
			frag = append(frag, fmt.Sprintf("%d drops", r.drops))
		}
		if r.delays > 0 {
			frag = append(frag, fmt.Sprintf("%d delays", r.delays))
		}
		if r.dups > 0 {
			frag = append(frag, fmt.Sprintf("%d dups", r.dups))
		}
		if len(frag) == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("p%d: %s", m.Proc, strings.Join(frag, ", ")))
	}
	if len(parts) == 0 {
		return ""
	}
	return "faultrt[" + strings.Join(parts, "; ") + "]"
}

package experiments

import (
	"strings"
	"testing"
)

func TestCSVShapes(t *testing.T) {
	f4 := Fig4Result{Points: []Fig4Point{{Load: 0.5, DReliable: 0.25, DCrash: 0.26, DOmit500: 0.27, DOmit100: 0.28}}}
	if got := f4.CSV(); !strings.HasPrefix(got, "load,") || !strings.Contains(got, "0.5,0.25,0.26,0.27,0.28") {
		t.Errorf("Fig4 CSV:\n%s", got)
	}
	f5 := Fig5Result{Points: []Fig5Point{{F: 1, URCGCAnalytic: 7, URCGCMeasured: 3.8, CBCASTAnalytic: 33, CBCASTMeasured: 19.3}}}
	if got := f5.CSV(); !strings.Contains(got, "1,7.0,3.8,33.0,19.3,0.0") {
		t.Errorf("Fig5 CSV:\n%s", got)
	}
	t1 := Table1Result{Rows: []Table1Row{{Protocol: "urcgc", N: 15, Condition: "reliable", MsgsPerSubrun: 28, PaperMsgs: 28, MeanSize: 339.1, MaxSize: 403}}}
	if got := t1.CSV(); !strings.Contains(got, "urcgc,15,reliable,28.0,28.0,339.1,403") {
		t.Errorf("Table1 CSV:\n%s", got)
	}
	var f6 Fig6Result
	f6.Curves = []Fig6Curve{{Label: "K=2 faulty", K: 2, Faulty: true}}
	f6.Curves[0].Series.T = []float64{0, 1}
	f6.Curves[0].Series.V = []float64{40, 80}
	if got := f6.CSV(); !strings.Contains(got, "K=2 faulty,2,true,false,1,80") {
		t.Errorf("Fig6 CSV:\n%s", got)
	}
	th := ThroughputResult{URCGCBefore: 100, URCGCDuring: 81, URCGCAfter: 81, CBCASTBefore: 100, CBCASTDuring: 37.4, CBCASTAfter: 89.7}
	if got := th.CSV(); !strings.Contains(got, "urcgc,100.0,81.0,81.0") || !strings.Contains(got, "cbcast,100.0,37.4,89.7") {
		t.Errorf("Throughput CSV:\n%s", got)
	}
}

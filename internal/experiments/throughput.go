package experiments

import (
	"fmt"

	"urcgc/internal/cbcast"
	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/workload"
)

// ThroughputConfig parameterizes the throughput-under-failures comparison.
// The paper claims urcgc "performs better than other proposals in terms of
// both network load and throughput" under failure conditions; Table 1
// covers network load, and this experiment quantifies throughput: messages
// processed per rtd across the group, before, during and after a crash.
type ThroughputConfig struct {
	N       int
	K       int
	Subruns int // workload duration
	CrashAt int // subrun of the fail-stop
	Seed    int64
}

// DefaultThroughput returns the configuration used by cmd/urcgc-bench.
func DefaultThroughput() ThroughputConfig {
	return ThroughputConfig{N: 10, K: 3, Subruns: 80, CrashAt: 20, Seed: 1}
}

// ThroughputResult compares per-phase processing rates.
type ThroughputResult struct {
	Cfg ThroughputConfig
	// Rates in processed messages per rtd (summed over live processes),
	// split at the crash and at the detection horizon (crash + 2K+4).
	URCGCBefore, URCGCDuring, URCGCAfter    float64
	CBCASTBefore, CBCASTDuring, CBCASTAfter float64
}

// Throughput runs both protocols through an identical crash scenario under
// full load and measures the group's processing rate in the three phases.
func Throughput(cfg ThroughputConfig) (ThroughputResult, error) {
	res := ThroughputResult{Cfg: cfg}
	crashT := sim.StartOfSubrun(cfg.CrashAt)
	// The "during" window spans detection and recovery: 2K+4 subruns.
	horizon := crashT + sim.Time(2*cfg.K+4)*sim.TicksPerSubrun
	endT := sim.StartOfSubrun(cfg.Subruns)

	// --- urcgc ---
	uc, err := core.NewCluster(core.ClusterConfig{
		Config:   core.Config{N: cfg.N, K: cfg.K, R: 2*cfg.K + 2, SelfExclusion: true},
		Seed:     cfg.Seed,
		Injector: fault.Crash{Proc: mid.ProcID(cfg.N - 1), At: crashT},
	})
	if err != nil {
		return res, err
	}
	var ub, ud, ua int
	countU := func(at sim.Time) {
		switch {
		case at < crashT:
			ub++
		case at < horizon:
			ud++
		default:
			ua++
		}
	}
	// Processing events are counted by sampling ProcessedLog growth at
	// every round boundary; the phase is decided by the round's time.
	prevCounts := make([]int, cfg.N)
	gen := workload.New(uc, cfg.Seed^0x77, workload.WithLimit(cfg.Subruns))
	_, err = uc.Run(core.RunOptions{
		MaxRounds: 2*cfg.Subruns + 100,
		OnRound: func(round int) {
			gen.OnRound(round)
			for i := 0; i < cfg.N; i++ {
				cur := len(uc.ProcessedLog[i])
				for k := prevCounts[i]; k < cur; k++ {
					countU(uc.Engine().Now())
				}
				prevCounts[i] = cur
			}
		},
	})
	if err != nil {
		return res, err
	}
	res.URCGCBefore = perRTD(ub, 0, crashT)
	res.URCGCDuring = perRTD(ud, crashT, horizon)
	res.URCGCAfter = perRTD(ua, horizon, endT)

	// --- CBCAST ---
	cc, err := cbcast.NewCluster(cbcast.ClusterConfig{
		Config:   cbcast.Config{N: cfg.N, K: cfg.K},
		Seed:     cfg.Seed,
		Injector: fault.Crash{Proc: mid.ProcID(cfg.N - 1), At: crashT},
	})
	if err != nil {
		return res, err
	}
	var cb, cd, ca int
	prevC := make([]int, cfg.N)
	err = cc.Run(2*cfg.Subruns+100, func(round int) {
		if round%2 == 0 && round/2 < cfg.Subruns {
			for i := 0; i < cfg.N; i++ {
				if !cc.Crashed(mid.ProcID(i)) {
					cc.Submit(mid.ProcID(i), payload())
				}
			}
		}
		now := cc.Engine().Now()
		for i := 0; i < cfg.N; i++ {
			cur := len(cc.DeliveredLog[i])
			for k := prevC[i]; k < cur; k++ {
				switch {
				case now < crashT:
					cb++
				case now < horizon:
					cd++
				default:
					ca++
				}
			}
			prevC[i] = cur
		}
	})
	if err != nil {
		return res, err
	}
	res.CBCASTBefore = perRTD(cb, 0, crashT)
	res.CBCASTDuring = perRTD(cd, crashT, horizon)
	res.CBCASTAfter = perRTD(ca, horizon, endT)
	return res, nil
}

func perRTD(count int, from, to sim.Time) float64 {
	span := (to - from).RTD()
	if span <= 0 {
		return 0
	}
	return float64(count) / span
}

// Render prints the comparison.
func (r ThroughputResult) Render() string {
	rows := [][]string{
		{"urcgc", f1(r.URCGCBefore), f1(r.URCGCDuring), f1(r.URCGCAfter)},
		{"cbcast", f1(r.CBCASTBefore), f1(r.CBCASTDuring), f1(r.CBCASTAfter)},
	}
	return fmt.Sprintf("Throughput — group messages processed per rtd around a crash at subrun %d (n=%d K=%d)\n",
		r.Cfg.CrashAt, r.Cfg.N, r.Cfg.K) +
		table([]string{"protocol", "before crash", "during detection", "after"}, rows)
}

package experiments

import (
	"fmt"
	"math/rand"

	"urcgc/internal/cbcast"
	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/psync"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

// Fig5Config parameterizes the agreement-time experiment.
type Fig5Config struct {
	N    int
	K    int
	Fs   []int // consecutive coordinator/manager crashes to sweep
	Seed int64
}

// DefaultFig5 returns the configuration used by cmd/urcgc-bench.
func DefaultFig5() Fig5Config {
	return Fig5Config{N: 10, K: 3, Fs: []int{0, 1, 2, 3, 4}, Seed: 1}
}

// Fig5Point is one x-position of Figure 5.
type Fig5Point struct {
	F int
	// URCGCAnalytic is the paper's 2K+f; CBCASTAnalytic is K(5f+6).
	URCGCAnalytic  float64
	CBCASTAnalytic float64
	// Measured values from the operational protocols (rtd). The paper
	// compares Psync only qualitatively ("mask_out has to be activated all
	// over again whenever a failure occurs"); PsyncMeasured quantifies its
	// blocking agreement for the f=0 case and is 0 for f > 0 (mask_out has
	// no initiator-failover story comparable to the other two).
	URCGCMeasured  float64
	CBCASTMeasured float64
	PsyncMeasured  float64
}

// Fig5Result is the full figure.
type Fig5Result struct {
	Cfg    Fig5Config
	Points []Fig5Point
}

// Fig5 reproduces Figure 5: the time T to complete the agreement on the new
// group composition and message stability after a crash, against the number
// f of consecutive coordinator (urcgc) / manager (CBCAST) crashes.
func Fig5(cfg Fig5Config) (Fig5Result, error) {
	res := Fig5Result{Cfg: cfg}
	for _, f := range cfg.Fs {
		u, err := fig5URCGC(cfg, f)
		if err != nil {
			return res, err
		}
		cb, err := fig5CBCAST(cfg, f)
		if err != nil {
			return res, err
		}
		pt := Fig5Point{
			F:              f,
			URCGCAnalytic:  float64(2*cfg.K + f),
			CBCASTAnalytic: float64(cfg.K * (5*f + 6)),
			URCGCMeasured:  u,
			CBCASTMeasured: cb,
		}
		if f == 0 {
			ps, err := fig5Psync(cfg)
			if err != nil {
				return res, err
			}
			pt.PsyncMeasured = ps
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// fig5URCGC crashes a subject process, then the coordinators of the next f
// subruns right before their decision phases, and measures the time until
// every active process has applied a full-group decision that excludes the
// subject.
func fig5URCGC(cfg Fig5Config, f int) (float64, error) {
	const s0 = 6
	subject := mid.ProcID(3) // not a coordinator around subrun s0 for n>=8
	t0 := sim.StartOfSubrun(s0)
	inj := fault.Multi{fault.Crash{Proc: subject, At: t0}}
	for i := 1; i <= f; i++ {
		coord := mid.ProcID((s0 + i) % cfg.N)
		inj = append(inj, fault.Crash{
			Proc: coord,
			At:   sim.StartOfSubrun(s0+i) + sim.TicksPerRound - 1,
		})
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Config: core.Config{
			N: cfg.N, K: cfg.K, R: 2*cfg.K + 2,
			// f may exceed K; the autonomous-leave rules would evict
			// correct processes outside the resilience assumption.
			SelfExclusion: false,
		},
		Seed:     cfg.Seed,
		Injector: inj,
	})
	if err != nil {
		return 0, err
	}
	agreedAt := make(map[mid.ProcID]sim.Time)
	c.OnDecision = func(p mid.ProcID, d *wire.Decision) {
		if _, done := agreedAt[p]; done {
			return
		}
		if c.Engine().Now() < t0 {
			return
		}
		if d.FullGroup && int(subject) < len(d.Alive) && !d.Alive[subject] {
			agreedAt[p] = c.Engine().Now()
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x915))
	_, err = c.Run(core.RunOptions{
		MaxRounds: 2 * (s0 + 2*cfg.K + f + 30),
		OnRound:   ringWorkload(c, rng, 1.0, s0+2*cfg.K+f+25),
	})
	if err != nil {
		return 0, err
	}
	var worst sim.Time = -1
	for _, p := range c.ActiveSet() {
		at, ok := agreedAt[p]
		if !ok {
			return -1, fmt.Errorf("fig5: f=%d: process %d never agreed", f, p)
		}
		if at > worst {
			worst = at
		}
	}
	return (worst - t0).RTD(), nil
}

// fig5CBCAST crashes a subject member, then the flush managers in rank
// order as they take over, and measures the time until every live member
// installs a view excluding the subject.
func fig5CBCAST(cfg Fig5Config, f int) (float64, error) {
	const s0 = 6
	subject := mid.ProcID(cfg.N - 1)
	t0 := sim.StartOfSubrun(s0)
	inj := fault.Multi{fault.Crash{Proc: subject, At: t0}}
	// Managers are the lowest-ranked live members: 0, then 1, ... Crash
	// manager i a little into its flush attempt.
	for i := 0; i < f; i++ {
		inj = append(inj, fault.Crash{
			Proc: mid.ProcID(i),
			At:   t0 + sim.Time(cfg.K*(2+3*i))*sim.TicksPerSubrun,
		})
	}
	c, err := cbcast.NewCluster(cbcast.ClusterConfig{
		Config:   cbcast.Config{N: cfg.N, K: cfg.K},
		Seed:     cfg.Seed,
		Injector: inj,
	})
	if err != nil {
		return 0, err
	}
	maxRounds := 2 * (s0 + cfg.K*(5*f+6) + 12*cfg.K*(f+2) + 40)
	err = c.Run(maxRounds, func(round int) {
		if round%2 != 0 || round/2 >= s0+cfg.K*(5*f+6)+30 {
			return
		}
		for i := 0; i < c.N(); i++ {
			if c.Crashed(mid.ProcID(i)) {
				continue
			}
			c.Submit(mid.ProcID(i), payload())
		}
	})
	if err != nil {
		return 0, err
	}
	// The agreement completes when every live member has installed a view
	// excluding the subject (and every crashed manager): take the earliest
	// epoch whose view excludes the subject, installed everywhere.
	var worst sim.Time = -1
	for i := 0; i < c.N(); i++ {
		p := mid.ProcID(i)
		if c.Crashed(p) {
			continue
		}
		if c.Proc(p).Alive(subject) {
			return -1, fmt.Errorf("fig5 cbcast: f=%d: member %d never excluded the subject", f, p)
		}
		var first sim.Time = -1
		for e := int32(1); e <= int32(f)+3; e++ {
			at, ok := c.ViewInstalls[p][e]
			if ok && at >= t0 {
				first = at
				break
			}
		}
		if first < 0 {
			return -1, fmt.Errorf("fig5 cbcast: f=%d: member %d has no install", f, p)
		}
		if first > worst {
			worst = first
		}
	}
	return (worst - t0).RTD(), nil
}

// fig5Psync measures Psync's mask_out agreement for one member crash: the
// time from the fail-stop until every surviving participant has installed
// the mask (and was suspended meanwhile).
func fig5Psync(cfg Fig5Config) (float64, error) {
	const s0 = 6
	subject := mid.ProcID(cfg.N - 1)
	t0 := sim.StartOfSubrun(s0)
	c, err := psync.NewCluster(psync.ClusterConfig{
		Config:   psync.Config{N: cfg.N, K: cfg.K},
		Seed:     cfg.Seed,
		Injector: fault.Crash{Proc: subject, At: t0},
	})
	if err != nil {
		return 0, err
	}
	masked := make([]sim.Time, cfg.N)
	for i := range masked {
		masked[i] = -1
	}
	err = c.Run(2*(s0+10*cfg.K+30), func(round int) {
		if round%2 == 0 && round/2 < s0+10*cfg.K+20 {
			for i := 0; i < c.N(); i++ {
				if !c.Crashed(mid.ProcID(i)) {
					c.Submit(mid.ProcID(i), payload())
				}
			}
		}
		for i := 0; i < c.N(); i++ {
			p := mid.ProcID(i)
			if masked[i] < 0 && !c.Crashed(p) && !c.Proc(p).Alive(subject) {
				masked[i] = c.Engine().Now()
			}
		}
	})
	if err != nil {
		return 0, err
	}
	var worst sim.Time = -1
	for i := 0; i < cfg.N; i++ {
		if c.Crashed(mid.ProcID(i)) {
			continue
		}
		if masked[i] < 0 {
			return -1, fmt.Errorf("fig5 psync: member %d never masked the subject", i)
		}
		if masked[i] > worst {
			worst = masked[i]
		}
	}
	return (worst - t0).RTD(), nil
}

// Render prints the figure as a table.
func (r Fig5Result) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		ps := "-"
		if p.PsyncMeasured > 0 {
			ps = f1(p.PsyncMeasured)
		}
		rows = append(rows, []string{
			fmt.Sprint(p.F),
			f1(p.URCGCAnalytic), f1(p.URCGCMeasured),
			f1(p.CBCASTAnalytic), f1(p.CBCASTMeasured),
			ps,
		})
	}
	return fmt.Sprintf("Figure 5 — agreement time T (rtd) vs consecutive coordinator crashes f, n=%d K=%d\n", r.Cfg.N, r.Cfg.K) +
		table([]string{"f", "urcgc 2K+f", "urcgc meas", "cbcast K(5f+6)", "cbcast meas", "psync mask_out"}, rows)
}

package experiments

import (
	"fmt"
	"math"

	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/metrics"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

// Fig6Config parameterizes the history-length experiments.
type Fig6Config struct {
	N        int   // paper: 40
	Messages int   // total user messages to process (paper: 480)
	Ks       []int // K values to sweep (Figure 6a plots several)
	// Threshold is the flow-control threshold for Figure 6b (paper: 8n);
	// Fig6a runs with 0 (disabled).
	Threshold int
	// FailWindowRTD bounds the failure window (paper: first 5 rtd).
	FailWindowRTD int
	Seed          int64
}

// DefaultFig6 returns the configuration used by cmd/urcgc-bench. The K
// sweep reaches K=8 because, as Section 6 notes, unreliable subnetworks
// require larger K, and it is at large K that the history growth crosses
// the 8n flow-control threshold of Figure 6b.
func DefaultFig6(n int) Fig6Config {
	return Fig6Config{
		N:             n,
		Messages:      12 * n, // 480 at the paper's n=40
		Ks:            []int{2, 5, 8},
		Threshold:     8 * n,
		FailWindowRTD: 5,
		Seed:          1,
	}
}

// Fig6Curve is one curve: history length sampled once per rtd.
type Fig6Curve struct {
	Label     string
	K         int
	Faulty    bool
	Series    metrics.Series // history length (max across live processes)
	Peak      float64
	DoneRTD   float64 // time to process all supplied messages (rtd), -1 if never
	Discarded int
}

// Fig6Result is Figure 6a or 6b.
type Fig6Result struct {
	Cfg         Fig6Config
	FlowControl bool
	Curves      []Fig6Curve
}

// Fig6a reproduces Figure 6a: history length against simulation time for
// several K, under reliable and general-omission (1 crash + 1/500
// omissions during the first FailWindowRTD rtd) conditions, without flow
// control.
func Fig6a(cfg Fig6Config) (Fig6Result, error) {
	return fig6(cfg, false)
}

// Fig6b reproduces Figure 6b: the same with the distributed flow control
// bounding the history at the threshold (8n in the paper), at the price of
// a longer time to terminate.
func Fig6b(cfg Fig6Config) (Fig6Result, error) {
	return fig6(cfg, true)
}

func fig6(cfg Fig6Config, flow bool) (Fig6Result, error) {
	res := Fig6Result{Cfg: cfg, FlowControl: flow}
	for _, k := range cfg.Ks {
		for _, faulty := range []bool{false, true} {
			curve, err := fig6Run(cfg, k, faulty, flow)
			if err != nil {
				return res, err
			}
			res.Curves = append(res.Curves, curve)
		}
	}
	return res, nil
}

func fig6Run(cfg Fig6Config, k int, faulty, flow bool) (Fig6Curve, error) {
	var inj fault.Injector
	if faulty {
		// General omission during the first FailWindowRTD rtd: two staggered
		// crashes plus 1/500 send omissions. (Our stability chain cleans
		// faster than the authors' simulator, so a single crash stalls the
		// histories less; the second admissible crash inside the same window
		// restores the paper's growth regime — see EXPERIMENTS.md.)
		inj = fault.Multi{
			fault.Crash{Proc: mid.ProcID(cfg.N - 1), At: 2 * sim.TicksPerRTD},
			fault.Crash{Proc: mid.ProcID(cfg.N - 2), At: 4 * sim.TicksPerRTD},
			fault.During{
				From:  0,
				To:    sim.Time(cfg.FailWindowRTD) * sim.TicksPerRTD,
				Inner: &fault.EveryNth{N: 500, Side: fault.AtSend},
			},
		}
	}
	threshold := 0
	if flow {
		threshold = cfg.Threshold
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Config: core.Config{
			N: cfg.N, K: k, R: 2*k + 2,
			HistoryThreshold: threshold,
			SelfExclusion:    true,
		},
		Seed:     cfg.Seed + int64(k),
		Injector: inj,
	})
	if err != nil {
		return Fig6Curve{}, err
	}
	// The paper supplies the full message budget up front: each process has
	// Messages/N messages to push, at most one per subrun, so the run lasts
	// at least Messages/N subruns and longer under failures or flow control.
	perProc := cfg.Messages / cfg.N
	for i := 0; i < cfg.N; i++ {
		for m := 0; m < perProc; m++ {
			if _, err := c.Submit(mid.ProcID(i), payload(), nil); err != nil {
				return Fig6Curve{}, err
			}
		}
	}
	resRun, err := c.Run(core.RunOptions{
		MaxRounds:         2 * (perProc*6 + 24*k + 60),
		MinRounds:         2 * perProc,
		StopWhenQuiescent: true,
		DrainSubruns:      2*k + 4,
	})
	if err != nil {
		return Fig6Curve{}, err
	}
	label := fmt.Sprintf("K=%d %s", k, map[bool]string{false: "reliable", true: "faulty"}[faulty])
	if flow {
		label += " +fc"
	}
	curve := Fig6Curve{
		Label:   label,
		K:       k,
		Faulty:  faulty,
		Series:  downsamplePerRTD(c.HistMax),
		Peak:    c.HistMax.Max(),
		DoneRTD: -1,
	}
	if resRun.QuiescentAtRound >= 0 {
		curve.DoneRTD = sim.StartOfRound(resRun.QuiescentAtRound).RTD()
	}
	for i := range c.DiscardLog {
		curve.Discarded += len(c.DiscardLog[i])
	}
	return curve, nil
}

// downsamplePerRTD keeps one sample per whole rtd (the last seen).
func downsamplePerRTD(s metrics.Series) metrics.Series {
	var out metrics.Series
	last := -1
	for i := range s.T {
		r := int(s.T[i])
		if r != last {
			out.T = append(out.T, float64(r))
			out.V = append(out.V, s.V[i])
			last = r
		} else {
			out.V[len(out.V)-1] = s.V[i]
		}
	}
	return out
}

// Render prints the curves as a table: one row per rtd, one column per
// curve, plus a summary of peaks and completion times.
func (r Fig6Result) Render() string {
	name := "Figure 6a — history length vs time (rtd), no flow control"
	if r.FlowControl {
		name = fmt.Sprintf("Figure 6b — history length vs time (rtd), flow-control threshold 8n=%d", r.Cfg.Threshold)
	}
	maxLen := 0
	for _, c := range r.Curves {
		if c.Series.Len() > maxLen {
			maxLen = c.Series.Len()
		}
	}
	header := []string{"rtd"}
	for _, c := range r.Curves {
		header = append(header, c.Label)
	}
	var rows [][]string
	for i := 0; i < maxLen; i++ {
		row := []string{fmt.Sprint(i)}
		for _, c := range r.Curves {
			if i < c.Series.Len() && !math.IsNaN(c.Series.V[i]) {
				row = append(row, fmt.Sprintf("%.0f", c.Series.V[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	out := fmt.Sprintf("%s, n=%d, %d messages\n", name, r.Cfg.N, r.Cfg.Messages)
	out += table(header, rows)
	out += "\nsummary:\n"
	for _, c := range r.Curves {
		done := "never"
		if c.DoneRTD >= 0 {
			done = fmt.Sprintf("%.0f rtd", c.DoneRTD)
		}
		out += fmt.Sprintf("  %-22s peak %4.0f  done %-8s discarded %d\n", c.Label, c.Peak, done, c.Discarded)
	}
	return out
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6): Figure 4 (mean end-to-end delay vs offered load),
// Figure 5 (agreement time vs consecutive coordinator crashes, urcgc vs
// CBCAST), Table 1 (control message counts and sizes), and Figures 6a/6b
// (history length over time, without and with distributed flow control).
//
// Each driver returns a structured result with the measured series plus,
// where the paper gives one, the analytic formula values; Render turns a
// result into the aligned text table cmd/urcgc-bench prints. Absolute
// numbers depend on the simulated substrate; the experiments are judged on
// shape (who wins, by what factor, where the knees are), as EXPERIMENTS.md
// records.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

// ringWorkload submits, at every subrun start up to limit subruns, one
// message per active process with probability rate, each causally depending
// on the latest processed message of the previous process in the ring —
// application-specified causality that keeps sequences concurrent, as the
// intermediate interpretation intends.
func ringWorkload(c *core.Cluster, rng *rand.Rand, rate float64, limitSubruns int) func(round int) {
	return func(round int) {
		if round%2 != 0 || round/2 >= limitSubruns {
			return
		}
		for i := 0; i < c.N(); i++ {
			p := mid.ProcID(i)
			if !c.Active(p) || rng.Float64() >= rate {
				continue
			}
			prev := mid.ProcID((i + c.N() - 1) % c.N())
			var deps mid.DepList
			if s := c.Proc(p).Processed()[prev]; s > 0 {
				deps = mid.DepList{{Proc: prev, Seq: s}}
			}
			// Submission can fail only if p left the group between the
			// Active check and here; skip silently in that case.
			_, _ = c.Submit(p, payload(), deps)
		}
	}
}

// payload returns the fixed-size user payload used across experiments (the
// paper's simulations assume messages fitting the network packet size).
func payload() []byte { return make([]byte, 64) }

// table renders rows of columns with right-aligned numeric columns.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

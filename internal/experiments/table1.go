package experiments

import (
	"fmt"
	"math/rand"

	"urcgc/internal/cbcast"
	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

// Table1Config parameterizes the control-traffic experiment.
type Table1Config struct {
	Ns      []int // group sizes (the paper discusses 15 and 40)
	K       int
	Subruns int
	Seed    int64
}

// DefaultTable1 returns the configuration used by cmd/urcgc-bench.
func DefaultTable1() Table1Config {
	return Table1Config{Ns: []int{15, 40}, K: 3, Subruns: 40, Seed: 1}
}

// Table1Row is one (protocol, n, condition) row: control messages per
// subrun, their mean size, and the paper's closed-form where it gives one.
type Table1Row struct {
	Protocol  string
	N         int
	Condition string // "reliable" or "crash"
	// MsgsPerSubrun counts control messages (everything but user data)
	// offered to the network per subrun.
	MsgsPerSubrun float64
	// MeanSize is the mean encoded control-message size in bytes.
	MeanSize float64
	// PaperMsgs is the paper's count formula evaluated for this row
	// (urcgc reliable: 2(n-1); urcgc crash: 2(2K+f)(n-1) over the recovery
	// window; CBCAST crash: K((f+1)(2n-3)+1)); 0 when the paper gives none.
	PaperMsgs float64
	// FitsIPDatagram reports whether the largest control message fits the
	// 576-byte minimum IP datagram, the paper's packaging argument.
	FitsIPDatagram bool
	MaxSize        int
}

// Table1Result is the full table.
type Table1Result struct {
	Cfg  Table1Config
	Rows []Table1Row
}

// Table1 reproduces Table 1: the amount of control messages and their size
// for urcgc and CBCAST under reliable and crash conditions.
func Table1(cfg Table1Config) (Table1Result, error) {
	res := Table1Result{Cfg: cfg}
	for _, n := range cfg.Ns {
		crashInj := func() fault.Injector {
			return fault.Crash{Proc: mid.ProcID(n - 1), At: sim.StartOfSubrun(8)}
		}
		// urcgc reliable and crash.
		ur, err := table1URCGC(cfg, n, nil)
		if err != nil {
			return res, err
		}
		ur.PaperMsgs = float64(2 * (n - 1))
		res.Rows = append(res.Rows, ur)
		uc, err := table1URCGC(cfg, n, crashInj())
		if err != nil {
			return res, err
		}
		uc.Condition = "crash"
		// Over a recovery window of 2K+f subruns the paper counts
		// 2(2K+f)(n-1) messages, i.e. still 2(n-1) per subrun.
		uc.PaperMsgs = float64(2 * (n - 1))
		res.Rows = append(res.Rows, uc)
		// CBCAST reliable and crash.
		cr, err := table1CBCAST(cfg, n, nil)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, cr)
		cc, err := table1CBCAST(cfg, n, crashInj())
		if err != nil {
			return res, err
		}
		cc.Condition = "crash"
		cc.PaperMsgs = float64(cfg.K * (1*(2*n-3) + 1)) // f=0 term of K((f+1)(2n-3)+1)
		res.Rows = append(res.Rows, cc)
	}
	return res, nil
}

func table1URCGC(cfg Table1Config, n int, inj fault.Injector) (Table1Row, error) {
	c, err := core.NewCluster(core.ClusterConfig{
		Config:   core.Config{N: n, K: cfg.K, R: 2*cfg.K + 2, SelfExclusion: true},
		Seed:     cfg.Seed,
		Injector: inj,
	})
	if err != nil {
		return Table1Row{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7a))
	_, err = c.Run(core.RunOptions{
		MaxRounds: 2 * cfg.Subruns,
		OnRound:   ringWorkload(c, rng, 1.0, cfg.Subruns),
	})
	if err != nil {
		return Table1Row{}, err
	}
	load := c.Net().Load()
	row := Table1Row{
		Protocol:      "urcgc",
		N:             n,
		Condition:     "reliable",
		MsgsPerSubrun: float64(load.ControlMsgs()) / float64(cfg.Subruns),
	}
	if m := load.ControlMsgs(); m > 0 {
		row.MeanSize = float64(load.ControlBytes()) / float64(m)
	}
	row.MaxSize = maxControlSize(load)
	row.FitsIPDatagram = row.MaxSize <= 576
	return row, nil
}

func table1CBCAST(cfg Table1Config, n int, inj fault.Injector) (Table1Row, error) {
	c, err := cbcast.NewCluster(cbcast.ClusterConfig{
		Config:   cbcast.Config{N: n, K: cfg.K},
		Seed:     cfg.Seed,
		Injector: inj,
	})
	if err != nil {
		return Table1Row{}, err
	}
	err = c.Run(2*cfg.Subruns, func(round int) {
		if round%2 != 0 || round/2 >= cfg.Subruns {
			return
		}
		for i := 0; i < c.N(); i++ {
			if c.Crashed(mid.ProcID(i)) {
				continue
			}
			c.Submit(mid.ProcID(i), payload())
		}
	})
	if err != nil {
		return Table1Row{}, err
	}
	load := c.Net().Load()
	row := Table1Row{
		Protocol:      "cbcast",
		N:             n,
		Condition:     "reliable",
		MsgsPerSubrun: float64(load.ControlMsgs()) / float64(cfg.Subruns),
	}
	if m := load.ControlMsgs(); m > 0 {
		row.MeanSize = float64(load.ControlBytes()) / float64(m)
	}
	row.MaxSize = maxControlSize(load)
	row.FitsIPDatagram = row.MaxSize <= 576
	return row, nil
}

// maxControlSize approximates the largest control message from the mean
// per-kind sizes (exact per-message maxima are not retained; flush and
// retransmit bodies dominate and their means are representative).
func maxControlSize(load interface {
	MeanSize(wire.Kind) float64
}) int {
	max := 0
	for _, k := range []wire.Kind{
		wire.KindRequest, wire.KindDecision, wire.KindRecover, wire.KindRetransmit,
		wire.KindCBAck, wire.KindCBFlushReq, wire.KindCBFlush, wire.KindCBFlushDat, wire.KindCBView,
	} {
		if s := int(load.MeanSize(k) + 0.5); s > max {
			max = s
		}
	}
	return max
}

// Render prints the table.
func (r Table1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		paper := "-"
		if row.PaperMsgs > 0 {
			paper = f1(row.PaperMsgs)
		}
		fits := "no"
		if row.FitsIPDatagram {
			fits = "yes"
		}
		rows = append(rows, []string{
			row.Protocol, fmt.Sprint(row.N), row.Condition,
			f1(row.MsgsPerSubrun), paper, f1(row.MeanSize), fmt.Sprint(row.MaxSize), fits,
		})
	}
	return fmt.Sprintf("Table 1 — control messages and sizes, K=%d, full load\n", r.Cfg.K) +
		table([]string{"protocol", "n", "condition", "ctl msgs/subrun", "paper msgs/subrun", "mean size B", "max size B", "fits 576B IP"}, rows)
}

package experiments

import (
	"fmt"

	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/workload"
)

// AblationConfig parameterizes the design-choice ablations.
type AblationConfig struct {
	N    int
	K    int
	Seed int64
}

// DefaultAblation returns the configuration used by cmd/urcgc-bench.
func DefaultAblation() AblationConfig { return AblationConfig{N: 8, K: 3, Seed: 1} }

// AblationResult gathers the three ablations DESIGN.md calls out.
type AblationResult struct {
	Cfg AblationConfig

	// Transport h (Section 5): identical loss, repair location moves.
	H1Recoveries, H1Retries int
	H4Recoveries, H4Retries int

	// Causal labelling: intermediate (explicit labels) vs temporal
	// (depend-on-everything) under identical loss. The waiting-list peak
	// shows the concurrency argument of Section 3: one missing message
	// blocks every sequence under temporal labels, only its dependents
	// under the intermediate interpretation. P95 delay tells the same
	// story from the latency side.
	IntermediateWaitPeak, TemporalWaitPeak float64
	IntermediateP95RTD, TemporalP95RTD     float64

	// Flow control: history peak with the valve off vs at 3n.
	PeakNoFC, PeakFC float64
}

// Ablation runs the three ablations.
func Ablation(cfg AblationConfig) (AblationResult, error) {
	res := AblationResult{Cfg: cfg}
	var err error
	if res.H1Recoveries, res.H1Retries, err = ablateTransport(cfg, 1); err != nil {
		return res, err
	}
	if res.H4Recoveries, res.H4Retries, err = ablateTransport(cfg, 4); err != nil {
		return res, err
	}
	if res.IntermediateWaitPeak, res.IntermediateP95RTD, err = ablateLabelling(cfg, workload.Ring); err != nil {
		return res, err
	}
	if res.TemporalWaitPeak, res.TemporalP95RTD, err = ablateLabelling(cfg, workload.Temporal); err != nil {
		return res, err
	}
	if res.PeakNoFC, err = ablateFlowControl(cfg, 0); err != nil {
		return res, err
	}
	if res.PeakFC, err = ablateFlowControl(cfg, 3*cfg.N); err != nil {
		return res, err
	}
	return res, nil
}

func ablateTransport(cfg AblationConfig, h int) (recoveries, retries int, err error) {
	c, err := core.NewCluster(core.ClusterConfig{
		Config:     core.Config{N: cfg.N, K: cfg.K, R: 2*cfg.K + 2, SelfExclusion: true},
		Seed:       cfg.Seed + 11,
		TransportH: h,
		Injector: fault.During{
			From: 0, To: 12 * sim.TicksPerRTD,
			Inner: fault.NewRate(0.04, fault.AtSend, cfg.Seed+77),
		},
	})
	if err != nil {
		return 0, 0, err
	}
	gen := workload.New(c, cfg.Seed^0x21, workload.WithLimit(15), workload.WithShape(workload.Independent))
	if _, err := c.Run(core.RunOptions{
		MaxRounds: 600, MinRounds: 60,
		OnRound:           gen.OnRound,
		StopWhenQuiescent: true, DrainSubruns: 4,
	}); err != nil {
		return 0, 0, err
	}
	for p := 0; p < c.N(); p++ {
		recoveries += c.Proc(mid.ProcID(p)).Stats.Recoveries
		if e := c.TransportEntity(mid.ProcID(p)); e != nil {
			retries += e.Stats.Retries
		}
	}
	return recoveries, retries, nil
}

func ablateLabelling(cfg AblationConfig, shape workload.Shape) (waitPeak, p95 float64, err error) {
	c, err := core.NewCluster(core.ClusterConfig{
		Config: core.Config{N: cfg.N, K: cfg.K, R: 2*cfg.K + 2, SelfExclusion: true},
		Seed:   cfg.Seed + 5,
		Injector: fault.During{
			From: 0, To: 30 * sim.TicksPerRTD,
			Inner: &fault.EveryNth{N: 40, Side: fault.AtSend},
		},
	})
	if err != nil {
		return 0, 0, err
	}
	gen := workload.New(c, cfg.Seed^0x44, workload.WithLimit(40), workload.WithShape(shape))
	res, err := c.Run(core.RunOptions{
		MaxRounds: 800, MinRounds: 2 * 2 * 40,
		OnRound:           gen.OnRound,
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		return 0, 0, err
	}
	if res.QuiescentAtRound < 0 {
		return -1, -1, fmt.Errorf("ablation: %v labelling never drained", shape)
	}
	return c.WaitMax.Max(), c.Delay.PercentileRTD(95), nil
}

func ablateFlowControl(cfg AblationConfig, threshold int) (float64, error) {
	c, err := core.NewCluster(core.ClusterConfig{
		Config: core.Config{
			N: cfg.N, K: cfg.K + 2, R: 2*(cfg.K+2) + 2,
			HistoryThreshold: threshold, SelfExclusion: true,
		},
		Seed:     cfg.Seed + 3,
		Injector: fault.Crash{Proc: mid.ProcID(cfg.N - 1), At: 2 * sim.TicksPerRTD},
	})
	if err != nil {
		return 0, err
	}
	if err := workload.Burst(c, 30, nil); err != nil {
		return 0, err
	}
	if _, err := c.Run(core.RunOptions{
		MaxRounds: 800, MinRounds: 60,
		StopWhenQuiescent: true, DrainSubruns: 8,
	}); err != nil {
		return 0, err
	}
	return c.HistMax.Max(), nil
}

// Render prints the ablations.
func (r AblationResult) Render() string {
	rows := [][]string{
		{"transport h=1 (datagram)", fmt.Sprintf("%d history recoveries, %d transport retries", r.H1Recoveries, r.H1Retries)},
		{"transport h=4", fmt.Sprintf("%d history recoveries, %d transport retries", r.H4Recoveries, r.H4Retries)},
		{"labelling intermediate", fmt.Sprintf("waiting peak %.0f, p95 delay %.2f rtd", r.IntermediateWaitPeak, r.IntermediateP95RTD)},
		{"labelling temporal", fmt.Sprintf("waiting peak %.0f, p95 delay %.2f rtd", r.TemporalWaitPeak, r.TemporalP95RTD)},
		{"flow control off", fmt.Sprintf("history peak %.0f", r.PeakNoFC)},
		{"flow control 3n", fmt.Sprintf("history peak %.0f", r.PeakFC)},
	}
	return fmt.Sprintf("Ablations — design choices isolated (n=%d K=%d)\n", r.Cfg.N, r.Cfg.K) +
		table([]string{"variant", "outcome"}, rows)
}

// CSV renders the ablations as CSV.
func (r AblationResult) CSV() string {
	rows := [][]string{
		{"variant", "metric", "value"},
		{"transport_h1", "history_recoveries", fmt.Sprint(r.H1Recoveries)},
		{"transport_h1", "transport_retries", fmt.Sprint(r.H1Retries)},
		{"transport_h4", "history_recoveries", fmt.Sprint(r.H4Recoveries)},
		{"transport_h4", "transport_retries", fmt.Sprint(r.H4Retries)},
		{"labelling_intermediate", "wait_peak", f1(r.IntermediateWaitPeak)},
		{"labelling_intermediate", "p95_rtd", f2(r.IntermediateP95RTD)},
		{"labelling_temporal", "wait_peak", f1(r.TemporalWaitPeak)},
		{"labelling_temporal", "p95_rtd", f2(r.TemporalP95RTD)},
		{"flow_control_off", "hist_peak", f1(r.PeakNoFC)},
		{"flow_control_3n", "hist_peak", f1(r.PeakFC)},
	}
	return csvJoin(rows)
}

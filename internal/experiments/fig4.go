package experiments

import (
	"fmt"

	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"

	"math/rand"
)

// Fig4Config parameterizes the delay-vs-load experiment.
type Fig4Config struct {
	N       int       // group size (paper-scale default 10)
	K       int       // crash-declaration retries
	Loads   []float64 // offered load, messages per process per subrun
	Subruns int       // workload duration per run
	Crashes int       // crashes in the "crash" condition (paper: 4)
	Seed    int64
}

// DefaultFig4 returns the configuration used by cmd/urcgc-bench.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		N: 10, K: 3,
		Loads:   []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0},
		Subruns: 150,
		Crashes: 4,
		Seed:    1,
	}
}

// Fig4Point is one x-position of Figure 4: the mean end-to-end delay D (in
// rtd) under each of the paper's four conditions.
type Fig4Point struct {
	Load      float64
	DReliable float64
	DCrash    float64 // 4 crashes: the paper's headline — same as reliable
	DOmit500  float64 // one omission per 500 messages
	DOmit100  float64 // one omission per 100 messages
}

// Fig4Result is the full figure.
type Fig4Result struct {
	Cfg    Fig4Config
	Points []Fig4Point
}

// Fig4 reproduces Figure 4: mean end-to-end delay D against the offered
// load of user messages, under reliable conditions, with crashes, and with
// omission rates 1/500 and 1/100.
func Fig4(cfg Fig4Config) (Fig4Result, error) {
	res := Fig4Result{Cfg: cfg}
	for li, load := range cfg.Loads {
		seed := cfg.Seed + int64(li)*101
		rel, err := fig4Run(cfg, load, seed, nil)
		if err != nil {
			return res, err
		}
		crash, err := fig4Run(cfg, load, seed, fig4Crashes(cfg))
		if err != nil {
			return res, err
		}
		om500, err := fig4Run(cfg, load, seed, &fault.EveryNth{N: 500, Side: fault.AtSend})
		if err != nil {
			return res, err
		}
		om100, err := fig4Run(cfg, load, seed, &fault.EveryNth{N: 100, Side: fault.AtSend})
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, Fig4Point{
			Load: load, DReliable: rel, DCrash: crash, DOmit500: om500, DOmit100: om100,
		})
	}
	return res, nil
}

// fig4Crashes spreads cfg.Crashes fail-stops across the run, one at a time,
// never more than the per-subrun resilience.
func fig4Crashes(cfg Fig4Config) fault.Injector {
	var inj fault.Multi
	for i := 0; i < cfg.Crashes; i++ {
		at := sim.StartOfSubrun(20 + 25*i)
		inj = append(inj, fault.Crash{Proc: mid.ProcID(cfg.N - 1 - i), At: at})
	}
	return inj
}

func fig4Run(cfg Fig4Config, load float64, seed int64, inj fault.Injector) (float64, error) {
	c, err := core.NewCluster(core.ClusterConfig{
		Config: core.Config{
			N: cfg.N, K: cfg.K, R: 2*cfg.K + 2, SelfExclusion: true,
		},
		Seed:     seed,
		Injector: inj,
	})
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5f4))
	_, err = c.Run(core.RunOptions{
		MaxRounds:         2*cfg.Subruns + 200,
		MinRounds:         2 * cfg.Subruns,
		OnRound:           ringWorkload(c, rng, load, cfg.Subruns),
		StopWhenQuiescent: true,
		DrainSubruns:      4,
	})
	if err != nil {
		return 0, err
	}
	return c.Delay.MeanRTD(), nil
}

// Render prints the figure as a table.
func (r Fig4Result) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			f2(p.Load), f2(p.DReliable), f2(p.DCrash), f2(p.DOmit500), f2(p.DOmit100),
		})
	}
	return fmt.Sprintf("Figure 4 — mean end-to-end delay D (rtd) vs offered load (msgs/proc/subrun), n=%d K=%d\n", r.Cfg.N, r.Cfg.K) +
		table([]string{"load", "reliable", fmt.Sprintf("%d crashes", r.Cfg.Crashes), "omit 1/500", "omit 1/100"}, rows)
}

package experiments

import (
	"fmt"
	"strings"
)

// CSV renderers: machine-readable forms of every experiment, for plotting
// the figures with external tools. Columns mirror Render's tables.

func csvJoin(rows [][]string) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders Figure 4 as CSV.
func (r Fig4Result) CSV() string {
	rows := [][]string{{"load", "reliable_rtd", "crash_rtd", "omit500_rtd", "omit100_rtd"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%g", p.Load), f2(p.DReliable), f2(p.DCrash), f2(p.DOmit500), f2(p.DOmit100),
		})
	}
	return csvJoin(rows)
}

// CSV renders Figure 5 as CSV.
func (r Fig5Result) CSV() string {
	rows := [][]string{{"f", "urcgc_analytic", "urcgc_measured", "cbcast_analytic", "cbcast_measured", "psync_measured"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.F),
			f1(p.URCGCAnalytic), f1(p.URCGCMeasured),
			f1(p.CBCASTAnalytic), f1(p.CBCASTMeasured),
			f1(p.PsyncMeasured),
		})
	}
	return csvJoin(rows)
}

// CSV renders Table 1 as CSV.
func (r Table1Result) CSV() string {
	rows := [][]string{{"protocol", "n", "condition", "ctl_msgs_per_subrun", "paper_msgs_per_subrun", "mean_size_bytes", "max_size_bytes"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Protocol, fmt.Sprint(row.N), row.Condition,
			f1(row.MsgsPerSubrun), f1(row.PaperMsgs), f1(row.MeanSize), fmt.Sprint(row.MaxSize),
		})
	}
	return csvJoin(rows)
}

// CSV renders Figure 6a/6b as long-form CSV (one row per sample).
func (r Fig6Result) CSV() string {
	rows := [][]string{{"curve", "k", "faulty", "flow_control", "rtd", "history_len"}}
	for _, c := range r.Curves {
		for i := range c.Series.T {
			rows = append(rows, []string{
				c.Label, fmt.Sprint(c.K), fmt.Sprint(c.Faulty), fmt.Sprint(r.FlowControl),
				fmt.Sprintf("%g", c.Series.T[i]), fmt.Sprintf("%g", c.Series.V[i]),
			})
		}
	}
	return csvJoin(rows)
}

// CSV renders the throughput comparison as CSV.
func (r ThroughputResult) CSV() string {
	rows := [][]string{
		{"protocol", "before_per_rtd", "during_per_rtd", "after_per_rtd"},
		{"urcgc", f1(r.URCGCBefore), f1(r.URCGCDuring), f1(r.URCGCAfter)},
		{"cbcast", f1(r.CBCASTBefore), f1(r.CBCASTDuring), f1(r.CBCASTAfter)},
	}
	return csvJoin(rows)
}

package experiments

import (
	"math"
	"strings"
	"testing"
)

// The experiment tests assert the SHAPES the paper reports, on smaller
// configurations so the suite stays fast.

func TestFig4Shape(t *testing.T) {
	cfg := Fig4Config{
		N: 8, K: 3,
		Loads:   []float64{0.2, 0.6, 1.0},
		Subruns: 80,
		Crashes: 3,
		Seed:    1,
	}
	res, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		// Reliable delay sits in the sub-rtd band (>= half a one-way trip).
		if p.DReliable < 0.1 || p.DReliable > 1.0 {
			t.Errorf("load %.1f: reliable D = %.2f rtd outside sane band", p.Load, p.DReliable)
		}
		// Headline: crashes do not degrade the delay (within 25%).
		if p.DCrash > p.DReliable*1.25+0.05 {
			t.Errorf("load %.1f: crash D %.3f should track reliable D %.3f", p.Load, p.DCrash, p.DReliable)
		}
		// Omissions degrade it, and 1/100 at least as much as 1/500.
		if p.DOmit100 < p.DOmit500*0.9 {
			t.Errorf("load %.1f: D(1/100)=%.3f should be >= D(1/500)=%.3f", p.Load, p.DOmit100, p.DOmit500)
		}
		if p.DOmit100 <= p.DReliable {
			t.Errorf("load %.1f: omissions should raise D: %.3f vs %.3f", p.Load, p.DOmit100, p.DReliable)
		}
	}
	if !strings.Contains(res.Render(), "Figure 4") {
		t.Error("Render missing title")
	}
}

func TestFig5Shape(t *testing.T) {
	cfg := Fig5Config{N: 10, K: 2, Fs: []int{0, 1, 2}, Seed: 1}
	res, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Points {
		if p.URCGCAnalytic != float64(2*cfg.K+p.F) {
			t.Errorf("f=%d: urcgc analytic %.0f", p.F, p.URCGCAnalytic)
		}
		if p.CBCASTAnalytic != float64(cfg.K*(5*p.F+6)) {
			t.Errorf("f=%d: cbcast analytic %.0f", p.F, p.CBCASTAnalytic)
		}
		if p.URCGCMeasured <= 0 || math.IsNaN(p.URCGCMeasured) {
			t.Errorf("f=%d: urcgc unmeasured (%v)", p.F, p.URCGCMeasured)
		}
		if p.CBCASTMeasured <= 0 || math.IsNaN(p.CBCASTMeasured) {
			t.Errorf("f=%d: cbcast unmeasured (%v)", p.F, p.CBCASTMeasured)
		}
		// CBCAST pays a blocking flush: always costlier than urcgc.
		if p.CBCASTMeasured <= p.URCGCMeasured {
			t.Errorf("f=%d: cbcast %.1f should exceed urcgc %.1f", p.F, p.CBCASTMeasured, p.URCGCMeasured)
		}
		// Both grow with f.
		if i > 0 {
			prev := res.Points[i-1]
			if p.URCGCMeasured+0.5 < prev.URCGCMeasured {
				t.Errorf("urcgc T should not shrink with f: f=%d %.1f vs f=%d %.1f", p.F, p.URCGCMeasured, prev.F, prev.URCGCMeasured)
			}
			if p.CBCASTMeasured+0.5 < prev.CBCASTMeasured {
				t.Errorf("cbcast T should not shrink with f: f=%d %.1f vs f=%d %.1f", p.F, p.CBCASTMeasured, prev.F, prev.CBCASTMeasured)
			}
		}
	}
	// Psync's mask_out (measured at f=0 only) also blocks and costs more
	// than urcgc's embedded handling.
	if p0 := res.Points[0]; !(p0.PsyncMeasured > p0.URCGCMeasured) {
		t.Errorf("psync mask_out %.1f should exceed urcgc %.1f", p0.PsyncMeasured, p0.URCGCMeasured)
	}
	// urcgc's growth is gentle (slope ~1 per f); cbcast's steep (~5K).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	df := float64(last.F - first.F)
	uSlope := (last.URCGCMeasured - first.URCGCMeasured) / df
	cSlope := (last.CBCASTMeasured - first.CBCASTMeasured) / df
	if cSlope <= uSlope {
		t.Errorf("cbcast slope %.2f should exceed urcgc slope %.2f", cSlope, uSlope)
	}
	if !strings.Contains(res.Render(), "Figure 5") {
		t.Error("Render missing title")
	}
}

func TestTable1Shape(t *testing.T) {
	cfg := Table1Config{Ns: []int{15}, K: 2, Subruns: 30, Seed: 1}
	res, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Table1Row{}
	for _, r := range res.Rows {
		byKey[r.Protocol+"/"+r.Condition] = r
	}
	ur, uc := byKey["urcgc/reliable"], byKey["urcgc/crash"]
	cr, cc := byKey["cbcast/reliable"], byKey["cbcast/crash"]

	// urcgc reliable: ~2(n-1)=28 control msgs per subrun.
	if ur.MsgsPerSubrun < 20 || ur.MsgsPerSubrun > 36 {
		t.Errorf("urcgc reliable ctl/subrun = %.1f, want near 28", ur.MsgsPerSubrun)
	}
	// urcgc control sizes unchanged by the crash (within 30%).
	if uc.MeanSize > ur.MeanSize*1.3 {
		t.Errorf("urcgc crash mean size %.0f vs reliable %.0f: should stay flat", uc.MeanSize, ur.MeanSize)
	}
	// urcgc control messages fit a minimum IP datagram at n=15.
	if !ur.FitsIPDatagram {
		t.Errorf("urcgc n=15 control message of %dB should fit 576B", ur.MaxSize)
	}
	// CBCAST reliable: fewer and shorter control messages than urcgc.
	if cr.MsgsPerSubrun >= ur.MsgsPerSubrun {
		t.Errorf("cbcast reliable ctl/subrun %.1f should undercut urcgc %.1f", cr.MsgsPerSubrun, ur.MsgsPerSubrun)
	}
	// The opposite under crashes: CBCAST's flush inflates its control
	// traffic growth far beyond urcgc's.
	cbGrowth := cc.MsgsPerSubrun - cr.MsgsPerSubrun
	urGrowth := uc.MsgsPerSubrun - ur.MsgsPerSubrun
	if cbGrowth <= urGrowth {
		t.Errorf("crash should inflate cbcast control traffic more: cbcast +%.1f vs urcgc +%.1f", cbGrowth, urGrowth)
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Error("Render missing title")
	}
}

func TestFig6Shape(t *testing.T) {
	cfg := Fig6Config{
		N:             10,
		Messages:      120,
		Ks:            []int{2, 4},
		Threshold:     30, // tighter than 8n so the small config exercises it
		FailWindowRTD: 5,
		Seed:          1,
	}
	a, err := Fig6a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	curves := map[string]Fig6Curve{}
	for _, c := range a.Curves {
		curves[c.Label] = c
	}
	// Reliable: history bounded by ~2n regardless of K.
	for _, k := range cfg.Ks {
		rel := curves[labelOf(k, false, false)]
		if rel.Peak > float64(2*cfg.N) {
			t.Errorf("K=%d reliable peak %v > 2n", k, rel.Peak)
		}
		if rel.DoneRTD < 0 {
			t.Errorf("K=%d reliable never completed", k)
		}
	}
	// Faulty: history grows with K.
	f2c, f4c := curves[labelOf(2, true, false)], curves[labelOf(4, true, false)]
	if !(f4c.Peak > f2c.Peak) {
		t.Errorf("faulty peak should grow with K: K=2 %v vs K=4 %v", f2c.Peak, f4c.Peak)
	}
	// Faulty exceeds reliable for the same K.
	if !(f4c.Peak > curves[labelOf(4, false, false)].Peak) {
		t.Error("failures should lengthen the history")
	}

	b, err := Fig6b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcurves := map[string]Fig6Curve{}
	for _, c := range b.Curves {
		bcurves[c.Label] = c
	}
	for _, k := range cfg.Ks {
		fc := bcurves[labelOf(k, true, true)]
		// Flow control bounds the history near the threshold (one
		// generation wave of slack).
		if fc.Peak > float64(cfg.Threshold+cfg.N) {
			t.Errorf("K=%d flow-controlled peak %v exceeds threshold+n", k, fc.Peak)
		}
		if fc.DoneRTD < 0 {
			t.Errorf("K=%d flow-controlled run never completed", k)
		}
		// ...at the price of not finishing earlier than the uncontrolled
		// run (when that one was actually constrained).
		un := curves[labelOf(k, true, false)]
		if un.Peak > float64(cfg.Threshold) && un.DoneRTD > 0 && fc.DoneRTD+1 < un.DoneRTD {
			t.Errorf("K=%d: flow control should not finish sooner: %v vs %v", k, fc.DoneRTD, un.DoneRTD)
		}
	}
	if !strings.Contains(a.Render(), "Figure 6a") || !strings.Contains(b.Render(), "Figure 6b") {
		t.Error("Render titles wrong")
	}
}

func labelOf(k int, faulty, flow bool) string {
	l := "K=" + itoa(k) + " reliable"
	if faulty {
		l = "K=" + itoa(k) + " faulty"
	}
	if flow {
		l += " +fc"
	}
	return l
}

func itoa(v int) string {
	return strings.TrimSpace(strings.Replace(string(rune('0'+v)), "\x00", "", -1))
}

func TestThroughputShape(t *testing.T) {
	res, err := Throughput(ThroughputConfig{N: 8, K: 2, Subruns: 60, CrashAt: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Both run at full rate before the crash (n messages per subrun, each
	// processed by n members: ~n*n per rtd, minus pipeline edges).
	if res.URCGCBefore < 40 || res.CBCASTBefore < 40 {
		t.Errorf("before-crash rates too low: urcgc %.1f cbcast %.1f", res.URCGCBefore, res.CBCASTBefore)
	}
	// The paper's claim: during detection urcgc keeps processing (it loses
	// only the dead member's share) while CBCAST's blocking flush cuts its
	// rate much deeper.
	urcgcDrop := res.URCGCDuring / res.URCGCBefore
	cbcastDrop := res.CBCASTDuring / res.CBCASTBefore
	if urcgcDrop < 0.6 {
		t.Errorf("urcgc throughput dropped to %.0f%% during detection", urcgcDrop*100)
	}
	if cbcastDrop >= urcgcDrop {
		t.Errorf("cbcast should suffer more during its flush: urcgc %.0f%% vs cbcast %.0f%%",
			urcgcDrop*100, cbcastDrop*100)
	}
	// Both recover afterwards.
	if res.URCGCAfter < res.URCGCBefore*0.6 || res.CBCASTAfter < res.CBCASTBefore*0.6 {
		t.Errorf("post-crash rates: urcgc %.1f cbcast %.1f", res.URCGCAfter, res.CBCASTAfter)
	}
	if !strings.Contains(res.Render(), "Throughput") {
		t.Error("Render missing title")
	}
}

func TestAblationShape(t *testing.T) {
	res, err := Ablation(DefaultAblation())
	if err != nil {
		t.Fatal(err)
	}
	// Section 5's trade: h=1 repairs from history, h>1 in the transport.
	if res.H1Retries != 0 {
		t.Errorf("h=1 produced %d transport retries", res.H1Retries)
	}
	if res.H1Recoveries == 0 || res.H4Retries == 0 {
		t.Errorf("repair missing: h1rec=%d h4ret=%d", res.H1Recoveries, res.H4Retries)
	}
	if res.H4Recoveries >= res.H1Recoveries {
		t.Errorf("h=4 should cut history recoveries: %d vs %d", res.H4Recoveries, res.H1Recoveries)
	}
	// Section 3's concurrency argument: temporal labels block more.
	if res.TemporalWaitPeak <= res.IntermediateWaitPeak {
		t.Errorf("temporal labelling should park more messages: %.0f vs %.0f",
			res.TemporalWaitPeak, res.IntermediateWaitPeak)
	}
	// Flow control bounds the peak.
	if res.PeakFC >= res.PeakNoFC {
		t.Errorf("flow control should cut the peak: %.0f vs %.0f", res.PeakFC, res.PeakNoFC)
	}
	if !strings.Contains(res.Render(), "Ablations") || !strings.Contains(res.CSV(), "transport_h1") {
		t.Error("render/CSV wrong")
	}
}

package cbcast

import (
	"fmt"
	"math"
	"testing"

	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

func run(t *testing.T, cc ClusterConfig, rounds int, onRound func(c *Cluster, round int)) *Cluster {
	t.Helper()
	c, err := NewCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(rounds, func(r int) {
		if onRound != nil {
			onRound(c, r)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func everyOther(perProc int) func(c *Cluster, round int) {
	return func(c *Cluster, round int) {
		if round%2 != 0 || round/2 >= perProc {
			return
		}
		for i := 0; i < c.N(); i++ {
			if c.Crashed(mid.ProcID(i)) {
				continue
			}
			c.Submit(mid.ProcID(i), []byte(fmt.Sprintf("m%d-%d", i, round/2)))
		}
	}
}

func TestReliableDeliveryAllToAll(t *testing.T) {
	c := run(t, ClusterConfig{Config: Config{N: 4, K: 3}, Seed: 1}, 100, everyOther(8))
	for i := 0; i < 4; i++ {
		if got := len(c.DeliveredLog[i]); got != 32 {
			t.Errorf("proc %d delivered %d, want 32", i, got)
		}
	}
}

func TestCausalDeliveryOrder(t *testing.T) {
	// p0 sends a; p1 delivers a then sends b (causally after a); every
	// process must deliver a before b.
	c, err := NewCluster(ClusterConfig{Config: Config{N: 3, K: 3}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(40, func(round int) {
		switch round {
		case 0:
			c.Submit(0, []byte("a"))
		case 2:
			// By round 2, p1 has delivered a (sub-round latency).
			if c.Proc(1).VT()[0] != 1 {
				t.Fatal("p1 should have delivered a before sending b")
			}
			c.Submit(1, []byte("b"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		log := c.DeliveredLog[i]
		posA, posB := -1, -1
		for j, id := range log {
			if id == (mid.MID{Proc: 0, Seq: 1}) {
				posA = j
			}
			if id == (mid.MID{Proc: 1, Seq: 1}) {
				posB = j
			}
		}
		if posA < 0 || posB < 0 || posA > posB {
			t.Errorf("proc %d delivered a at %d, b at %d", i, posA, posB)
		}
	}
}

func TestStabilityCompactsRetainedBuffer(t *testing.T) {
	c := run(t, ClusterConfig{Config: Config{N: 4, K: 3}, Seed: 3}, 160, everyOther(8))
	for i := 0; i < 4; i++ {
		if got := c.Proc(mid.ProcID(i)).RetainedLen(); got != 0 {
			t.Errorf("proc %d retains %d unstable messages after quiet period", i, got)
		}
	}
}

func TestPiggybackDominatesControlTrafficUnderLoad(t *testing.T) {
	c := run(t, ClusterConfig{Config: Config{N: 6, K: 3}, Seed: 4}, 120, everyOther(30))
	load := c.Net().Load()
	// Under continuous load stability rides on data; explicit acks only
	// appear in the drain tail. CBCAST control messages must be well below
	// urcgc's 2(n-1) per subrun (= 10/subrun here, 600 over the run).
	if acks := load.Counts[wire.KindCBAck]; acks > 300 {
		t.Errorf("explicit acks = %d, piggyback should dominate", acks)
	}
	if fl := load.Counts[wire.KindCBFlushReq]; fl != 0 {
		t.Errorf("no flush under reliable conditions, got %d", fl)
	}
}

func TestCrashTriggersFlushAndViewInstall(t *testing.T) {
	failAt := sim.StartOfSubrun(6)
	c := run(t, ClusterConfig{
		Config:   Config{N: 5, K: 2},
		Seed:     5,
		Injector: fault.Crash{Proc: 3, At: failAt},
	}, 400, everyOther(40))
	// All survivors must have installed a view excluding 3.
	for i := 0; i < 5; i++ {
		if i == 3 {
			continue
		}
		p := c.Proc(mid.ProcID(i))
		if p.Alive(3) {
			t.Errorf("proc %d still has 3 in view (epoch %d)", i, p.Epoch())
		}
		if p.Suspended() {
			t.Errorf("proc %d still suspended at end", i)
		}
	}
	tRTD := c.AgreementRTD(1, failAt)
	if tRTD < 0 {
		t.Fatal("epoch 1 never installed everywhere")
	}
	// The flush should cost on the order of 5-7 phases of 2K subruns:
	// far more than urcgc's 2K+f = 4. Assert it is at least 2K+2 and
	// bounded by a generous multiple.
	if tRTD < float64(2*2+2) || tRTD > 60 {
		t.Errorf("CBCAST agreement T = %.1f rtd, expected blocking-flush magnitude", tRTD)
	}
	// Suspension actually happened (the blocking cost urcgc avoids).
	suspended := int64(0)
	for i := 0; i < 5; i++ {
		if i != 3 {
			suspended += c.Proc(mid.ProcID(i)).Stats.SuspendedT
		}
	}
	if suspended == 0 {
		t.Error("flush should have suspended processing")
	}
}

func TestSurvivorsConvergeAfterCrash(t *testing.T) {
	failAt := sim.StartOfSubrun(6)
	c := run(t, ClusterConfig{
		Config:   Config{N: 4, K: 2},
		Seed:     6,
		Injector: fault.Crash{Proc: 2, At: failAt},
	}, 500, everyOther(25))
	// After the run, survivors must agree on delivered counts per sender.
	var ref []uint32
	for i := 0; i < 4; i++ {
		if i == 2 {
			continue
		}
		vt := c.Proc(mid.ProcID(i)).VT()
		if ref == nil {
			ref = vt
			continue
		}
		for q := range ref {
			if ref[q] != vt[q] {
				t.Fatalf("survivor VTs disagree: %v vs %v", ref, vt)
			}
		}
	}
}

func TestAgreementGrowsWithManagerCrash(t *testing.T) {
	// f=0: crash a non-manager member. f=1: additionally crash the manager
	// right after it starts the flush, forcing a restart by the next
	// manager. T must grow by roughly 5K subruns.
	k := 2
	base := func(extra fault.Injector) float64 {
		inj := fault.Multi{fault.Crash{Proc: 4, At: sim.StartOfSubrun(6)}}
		if extra != nil {
			inj = append(inj, extra)
		}
		c := run(t, ClusterConfig{Config: Config{N: 5, K: k}, Seed: 7, Injector: inj}, 700, everyOther(60))
		// The final epoch installed everywhere among survivors:
		var last int32
		for e := int32(1); e <= 4; e++ {
			ok := true
			for i := 0; i < 5; i++ {
				if c.Crashed(mid.ProcID(i)) {
					continue
				}
				if _, has := c.ViewInstalls[i][e]; !has {
					ok = false
				}
			}
			if ok {
				last = e
			}
		}
		if last == 0 {
			t.Fatal("no epoch installed everywhere")
		}
		return c.AgreementRTD(last, sim.StartOfSubrun(6))
	}
	t0 := base(nil)
	t1 := base(fault.Crash{Proc: 0, At: sim.StartOfSubrun(6) + 3*sim.TicksPerSubrun})
	if !(t1 > t0+float64(k)) {
		t.Errorf("manager crash should lengthen agreement: T(f=0)=%.1f T(f=1)=%.1f", t0, t1)
	}
	if math.IsNaN(t0) || math.IsNaN(t1) {
		t.Error("agreement unmeasured")
	}
}

func TestDelayDegradesDuringFlush(t *testing.T) {
	// Compare mean delay with and without a crash: the flush suspension
	// must visibly raise D (the paper's point about blocking protocols).
	reliable := run(t, ClusterConfig{Config: Config{N: 5, K: 3}, Seed: 8}, 400, everyOther(60))
	crashed := run(t, ClusterConfig{
		Config:   Config{N: 5, K: 3},
		Seed:     8,
		Injector: fault.Crash{Proc: 4, At: sim.StartOfSubrun(10)},
	}, 400, everyOther(60))
	d0, d1 := reliable.Delay.MeanRTD(), crashed.Delay.MeanRTD()
	if !(d1 > d0*1.5) {
		t.Errorf("flush should degrade delay: reliable %.2f rtd vs crash %.2f rtd", d0, d1)
	}
}

func TestConfigValidate(t *testing.T) {
	if (Config{N: 0, K: 1}).Validate() == nil {
		t.Error("N=0 invalid")
	}
	if (Config{N: 3, K: 0}).Validate() == nil {
		t.Error("K=0 invalid")
	}
	if (Config{N: 3, K: 2}).Validate() != nil {
		t.Error("valid config rejected")
	}
}

func TestEncodedSizes(t *testing.T) {
	d := &Data{Sender: 1, TS: make([]uint32, 5), Delivered: make([]uint32, 5), Payload: []byte("xy")}
	if got := d.EncodedSize(); got != 1+4+20+20+2+2 {
		t.Errorf("Data size = %d", got)
	}
	a := &Ack{Sender: 1, Delivered: make([]uint32, 5)}
	if got := a.EncodedSize(); got != 1+4+20 {
		t.Errorf("Ack size = %d", got)
	}
	f := &Flush{Sender: 1, Delivered: make([]uint32, 5), Unstable: []*Data{d}}
	if got := f.EncodedSize(); got != 1+4+4+20+2+(d.EncodedSize()-1) {
		t.Errorf("Flush size = %d", got)
	}
	v := &View{Alive: make([]bool, 9)}
	if got := v.EncodedSize(); got != 1+4+4+2 {
		t.Errorf("View size = %d", got)
	}
}

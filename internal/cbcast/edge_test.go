package cbcast

import (
	"testing"

	"urcgc/internal/mid"
	"urcgc/internal/vclock"
	"urcgc/internal/wire"
)

// nullTransport swallows everything.
type nullTransport struct{}

func (nullTransport) Send(mid.ProcID, wire.PDU) {}
func (nullTransport) Broadcast(wire.PDU)        {}

func newEdgeProc(t *testing.T, id mid.ProcID, n, k int, cb Callbacks) *Process {
	t.Helper()
	p, err := NewProcess(id, Config{N: n, K: k}, nullTransport{}, cb)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func dataFrom(sender mid.ProcID, n int, own uint32, cross map[int]uint32) *Data {
	ts := vclock.New(n)
	ts[sender] = own
	for k, v := range cross {
		ts[k] = v
	}
	return &Data{Sender: sender, TS: ts, Delivered: vclock.New(n), Payload: []byte("x")}
}

func TestDuplicateAndOldDataIgnored(t *testing.T) {
	delivered := 0
	p := newEdgeProc(t, 0, 3, 2, Callbacks{OnDeliver: func(*Data) { delivered++ }})
	m := dataFrom(1, 3, 1, nil)
	p.Recv(1, m)
	p.Recv(1, m) // already delivered (vt advanced)
	if delivered != 1 {
		t.Errorf("delivered = %d", delivered)
	}
	// An out-of-order future message parks, and re-offering it while
	// waiting does not duplicate.
	fut := dataFrom(1, 3, 3, nil)
	p.Recv(1, fut)
	p.Recv(1, fut)
	if p.WaitingLen() != 1 {
		t.Errorf("waiting = %d", p.WaitingLen())
	}
	// The gap-filler cascades both.
	p.Recv(1, dataFrom(1, 3, 2, nil))
	if delivered != 3 || p.WaitingLen() != 0 {
		t.Errorf("delivered=%d waiting=%d", delivered, p.WaitingLen())
	}
}

func TestViewChangeDiscardsUndeliverableOrphans(t *testing.T) {
	var discarded []*Data
	p := newEdgeProc(t, 0, 3, 2, Callbacks{OnDiscard: func(m *Data) { discarded = append(discarded, m) }})
	// A message from p1 whose cross entry requires p2's first broadcast,
	// which nobody has: if p2 dies, the message can never be delivered.
	orphan := dataFrom(1, 3, 1, map[int]uint32{2: 1})
	p.Recv(1, orphan)
	if p.WaitingLen() != 1 {
		t.Fatalf("waiting = %d", p.WaitingLen())
	}
	p.onView(&View{Manager: 0, Epoch: 1, Alive: []bool{true, true, false}})
	if len(discarded) != 1 {
		t.Fatalf("discarded = %v", discarded)
	}
	if p.WaitingLen() != 0 {
		t.Errorf("waiting = %d after view change", p.WaitingLen())
	}
	if p.Epoch() != 1 || p.Alive(2) {
		t.Error("view not installed")
	}
}

func TestStaleViewIgnored(t *testing.T) {
	p := newEdgeProc(t, 0, 3, 2, Callbacks{})
	p.onView(&View{Manager: 0, Epoch: 2, Alive: []bool{true, true, false}})
	// An older view must not roll the membership back.
	p.onView(&View{Manager: 0, Epoch: 1, Alive: []bool{true, true, true}})
	if p.Alive(2) || p.Epoch() != 2 {
		t.Error("stale view applied")
	}
}

func TestStaleFlushReqIgnored(t *testing.T) {
	p := newEdgeProc(t, 1, 3, 2, Callbacks{})
	p.onView(&View{Manager: 0, Epoch: 3, Alive: []bool{true, true, true}})
	p.onFlushReq(&FlushReq{Manager: 0, Epoch: 2, Dead: []bool{false, false, true}})
	if p.Suspended() {
		t.Error("stale flush request must not suspend")
	}
}

func TestIdleAckOnlyWithUnstableState(t *testing.T) {
	// A process with an empty retained buffer and nothing delivered stays
	// silent across rounds; after delivering, it acks once.
	sent := &capture{}
	p, err := NewProcess(0, Config{N: 3, K: 3}, sent, Callbacks{})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		p.StartRound(r)
	}
	if len(sent.bcasts) != 0 {
		t.Fatalf("idle process broadcast %d PDUs", len(sent.bcasts))
	}
	p.Recv(1, dataFrom(1, 3, 1, nil))
	p.StartRound(8)
	acks := 0
	for _, b := range sent.bcasts {
		if _, ok := b.(*Ack); ok {
			acks++
		}
	}
	if acks != 1 {
		t.Errorf("acks = %d, want 1 after a delivery", acks)
	}
}

// capture duplicates the cbcast-side test transport (kept local to this
// file for clarity).
type capture struct {
	sends  []wire.PDU
	bcasts []wire.PDU
}

func (c *capture) Send(_ mid.ProcID, pdu wire.PDU) { c.sends = append(c.sends, pdu) }
func (c *capture) Broadcast(pdu wire.PDU)          { c.bcasts = append(c.bcasts, pdu) }

func TestFlushAckOnlyCountedInAckWait(t *testing.T) {
	p := newEdgeProc(t, 0, 3, 2, Callbacks{})
	p.Recv(1, &flushAck{Sender: 1, Epoch: 1})
	// Nothing to assert but absence of a panic and no state corruption:
	if p.Suspended() {
		t.Error("stray flush ack suspended the process")
	}
}

func TestNoteVectorBoundsChecked(t *testing.T) {
	p := newEdgeProc(t, 0, 2, 2, Callbacks{})
	p.noteVector(-1, vclock.VT{9, 9})
	p.noteVector(5, vclock.VT{9, 9})
	// Out-of-range senders are ignored; in-range merges.
	p.noteVector(1, vclock.VT{3, 4})
	if p.ackMat[1][1] != 4 {
		t.Errorf("ackMat = %v", p.ackMat[1])
	}
}

package cbcast

import (
	"fmt"

	"urcgc/internal/fault"
	"urcgc/internal/metrics"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/simnet"
	"urcgc/internal/wire"
)

// ClusterConfig configures a simulated CBCAST group.
type ClusterConfig struct {
	Config
	Seed     int64
	Injector fault.Injector
	Latency  simnet.Latency
}

// Cluster runs a CBCAST group in the simulator, mirroring the urcgc cluster
// so the experiments drive both identically. CBCAST assumes a reliable
// transport underneath (the paper calls this out as a urcgc advantage), so
// drive it with crash-only failure models.
type Cluster struct {
	cfg   ClusterConfig
	eng   *sim.Engine
	net   *simnet.Network
	procs []*Process

	Delay *metrics.Delay
	// DeliveredLog records delivery order per process as (sender, seq).
	DeliveredLog [][]mid.MID
	// ViewInstalls records (time, epoch) pairs per process.
	ViewInstalls []map[int32]sim.Time
}

type netTransport struct {
	nw   *simnet.Network
	self mid.ProcID
}

func (t netTransport) Send(dst mid.ProcID, pdu wire.PDU) { t.nw.Send(t.self, dst, pdu) }

func (t netTransport) Broadcast(pdu wire.PDU) {
	for dst := 0; dst < t.nw.N(); dst++ {
		t.nw.Send(t.self, mid.ProcID(dst), pdu)
	}
}

// NewCluster builds a CBCAST group of cc.N processes.
func NewCluster(cc ClusterConfig) (*Cluster, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	inj := cc.Injector
	if inj == nil {
		inj = fault.None{}
	}
	eng := sim.NewEngine(cc.Seed)
	nw := simnet.New(eng, cc.N, inj)
	if cc.Latency != nil {
		nw.SetLatency(cc.Latency)
	}
	c := &Cluster{
		cfg:          cc,
		eng:          eng,
		net:          nw,
		procs:        make([]*Process, cc.N),
		Delay:        metrics.NewDelay(),
		DeliveredLog: make([][]mid.MID, cc.N),
		ViewInstalls: make([]map[int32]sim.Time, cc.N),
	}
	for i := 0; i < cc.N; i++ {
		id := mid.ProcID(i)
		c.ViewInstalls[i] = make(map[int32]sim.Time)
		cb := Callbacks{
			OnDeliver: func(m *Data) {
				key := mid.MID{Proc: m.Sender, Seq: mid.Seq(m.TS[m.Sender])}
				c.DeliveredLog[id] = append(c.DeliveredLog[id], key)
				c.Delay.Processed(key, eng.Now())
			},
			OnViewInstalled: func(epoch int32, _ []bool) {
				c.ViewInstalls[id][epoch] = eng.Now()
			},
		}
		p, err := NewProcess(id, cc.Config, netTransport{nw: nw, self: id}, cb)
		if err != nil {
			return nil, err
		}
		c.procs[i] = p
		nw.Attach(id, p)
	}
	return c, nil
}

// Engine returns the event engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Net returns the network (for load accounting).
func (c *Cluster) Net() *simnet.Network { return c.net }

// Proc returns process i.
func (c *Cluster) Proc(i mid.ProcID) *Process { return c.procs[i] }

// N returns the group cardinality.
func (c *Cluster) N() int { return c.cfg.N }

// Crashed reports whether the failure model has fail-stopped p.
func (c *Cluster) Crashed(p mid.ProcID) bool {
	inj := c.cfg.Injector
	if inj == nil {
		return false
	}
	return inj.Crashed(p, c.eng.Now())
}

// Submit queues a payload at p and records generation time against the MID
// the message will carry ((p, current sent count + queued + 1)).
func (c *Cluster) Submit(p mid.ProcID, payload []byte) mid.MID {
	proc := c.procs[p]
	id := mid.MID{Proc: p, Seq: mid.Seq(proc.vt[p]) + mid.Seq(len(proc.outbox)) + 1}
	proc.Submit(payload)
	c.Delay.Generated(id, c.eng.Now())
	return id
}

// Run drives the cluster for maxRounds rounds, invoking onRound first at
// every round.
func (c *Cluster) Run(maxRounds int, onRound func(round int)) error {
	if maxRounds <= 0 {
		return fmt.Errorf("cbcast: maxRounds must be positive")
	}
	sim.NewTicker(c.eng, func(round int) bool {
		if round >= maxRounds {
			return false
		}
		if onRound != nil {
			onRound(round)
		}
		for i, p := range c.procs {
			if c.Crashed(mid.ProcID(i)) {
				continue
			}
			p.StartRound(round)
		}
		return true
	})
	c.eng.Run()
	return nil
}

// AgreementRTD returns, for the given epoch, the time from failAt to the
// moment the LAST live process installed the view — the Figure 5 T for
// CBCAST — or NaN if some live process never installed it.
func (c *Cluster) AgreementRTD(epoch int32, failAt sim.Time) float64 {
	var worst sim.Time = -1
	for i := range c.procs {
		if c.Crashed(mid.ProcID(i)) {
			continue
		}
		at, ok := c.ViewInstalls[i][epoch]
		if !ok {
			return -1
		}
		if at > worst {
			worst = at
		}
	}
	return (worst - failAt).RTD()
}

// Package cbcast reimplements the CBCAST causal multicast of ISIS (Birman,
// Schiper, Stephenson 1991) as the paper's main comparison baseline.
//
// Normal operation stamps every broadcast with the sender's vector
// timestamp; receivers delay delivery until the CBCAST test admits the
// message, and stability is learnt from delivery vectors piggybacked on
// data traffic (with explicit ack messages only when a process has
// undelivered state and nothing to piggyback on). Messages are retained
// until stable.
//
// The contrast with urcgc is in failure handling: when the group manager
// observes K subruns of silence from a member it starts a specialized
// *flush* protocol — announce, collect unstable messages, re-disseminate,
// acknowledge, install the new view — during which the delivery and
// generation of new messages is suspended. Each phase is retried for K
// subruns to be reliable, and a manager crash restarts the flush under the
// next manager, which is how the paper's K(5f+6) rtd cost arises
// (Figure 5) against urcgc's 2K+f.
package cbcast

import (
	"fmt"

	"urcgc/internal/mid"
	"urcgc/internal/vclock"
	"urcgc/internal/wire"
)

// Config carries the CBCAST group parameters.
type Config struct {
	N int
	K int // silence threshold (subruns) and per-phase retry count
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("cbcast: N = %d", c.N)
	}
	if c.K < 1 {
		return fmt.Errorf("cbcast: K = %d", c.K)
	}
	return nil
}

// Data is a vector-stamped causal broadcast. Delivered carries the sender's
// delivery vector as the piggybacked stability information.
type Data struct {
	Sender    mid.ProcID
	TS        vclock.VT
	Delivered vclock.VT
	Payload   []byte
}

// Kind implements wire.PDU.
func (*Data) Kind() wire.Kind { return wire.KindCBData }

// EncodedSize implements wire.PDU: kind + sender + two vectors + payload.
func (d *Data) EncodedSize() int {
	return 1 + 4 + 4*len(d.TS) + 4*len(d.Delivered) + 2 + len(d.Payload)
}

// key identifies a broadcast: sender plus its position in the sender's
// broadcast sequence (the sender's own TS entry).
type key struct {
	sender mid.ProcID
	seq    uint32
}

// Ack is the explicit stability message used when there is no data traffic
// to piggyback on: the sender's delivery vector. Size 4(n+1)-ish, matching
// the paper's Table 1 description of CBCAST control messages.
type Ack struct {
	Sender    mid.ProcID
	Delivered vclock.VT
}

// Kind implements wire.PDU.
func (*Ack) Kind() wire.Kind { return wire.KindCBAck }

// EncodedSize implements wire.PDU.
func (a *Ack) EncodedSize() int { return 1 + 4 + 4*len(a.Delivered) }

// FlushReq announces a view change: Dead is being removed, under the given
// flush epoch. Broadcast by the manager once per subrun for K subruns.
type FlushReq struct {
	Manager mid.ProcID
	Epoch   int32
	Dead    []bool
}

// Kind implements wire.PDU.
func (*FlushReq) Kind() wire.Kind { return wire.KindCBFlushReq }

// EncodedSize implements wire.PDU.
func (f *FlushReq) EncodedSize() int { return 1 + 4 + 4 + (len(f.Dead)+7)/8 }

// Flush carries a member's unstable messages to the manager, plus its
// delivery vector. The paper sizes flush messages at 4(n-1) bytes; ours is
// the vector plus the retained messages.
type Flush struct {
	Sender    mid.ProcID
	Epoch     int32
	Delivered vclock.VT
	Unstable  []*Data
}

// Kind implements wire.PDU.
func (*Flush) Kind() wire.Kind { return wire.KindCBFlush }

// EncodedSize implements wire.PDU.
func (f *Flush) EncodedSize() int {
	s := 1 + 4 + 4 + 4*len(f.Delivered) + 2
	for _, m := range f.Unstable {
		s += m.EncodedSize() - 1
	}
	return s
}

// FlushData re-disseminates the unstable messages the manager collected.
type FlushData struct {
	Manager mid.ProcID
	Epoch   int32
	Msgs    []*Data
}

// Kind implements wire.PDU.
func (*FlushData) Kind() wire.Kind { return wire.KindCBFlushDat }

// EncodedSize implements wire.PDU.
func (f *FlushData) EncodedSize() int {
	s := 1 + 4 + 4 + 2
	for _, m := range f.Msgs {
		s += m.EncodedSize() - 1
	}
	return s
}

// View installs the new group composition, ending the flush.
type View struct {
	Manager mid.ProcID
	Epoch   int32
	Alive   []bool
}

// Kind implements wire.PDU.
func (*View) Kind() wire.Kind { return wire.KindCBView }

// EncodedSize implements wire.PDU.
func (v *View) EncodedSize() int { return 1 + 4 + 4 + (len(v.Alive)+7)/8 }

// flushAck acknowledges receipt of the manager's FlushData. It reuses the
// Ack kind on the wire (it is an ack) but is a distinct type so the state
// machine cannot confuse the two.
type flushAck struct {
	Sender mid.ProcID
	Epoch  int32
}

func (*flushAck) Kind() wire.Kind  { return wire.KindCBAck }
func (*flushAck) EncodedSize() int { return 1 + 4 + 4 }
func (a *flushAck) String() string { return fmt.Sprintf("flushAck(%d,%d)", a.Sender, a.Epoch) }

var _ wire.PDU = (*flushAck)(nil)

// phase of the flush state machine.
type phase int

const (
	phaseNormal  phase = iota
	phaseCollect       // manager announced; members send Flush; manager gathers
	phaseAckWait       // manager re-disseminated; waiting for acks
)

package cbcast

import (
	"testing"

	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Config: Config{N: 0, K: 1}}); err == nil {
		t.Error("invalid config accepted")
	}
	c, err := NewCluster(ClusterConfig{Config: Config{N: 3, K: 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, nil); err == nil {
		t.Error("non-positive maxRounds accepted")
	}
	if c.N() != 3 || c.Engine() == nil || c.Net() == nil {
		t.Error("accessors wrong")
	}
	if c.Crashed(0) {
		t.Error("nothing crashed under nil injector")
	}
}

func TestAgreementRTDUnmeasured(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Config: Config{N: 3, K: 2}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.AgreementRTD(1, 0); got >= 0 {
		t.Errorf("AgreementRTD with no installs = %v, want negative sentinel", got)
	}
}

func TestDelayMeasuredAcrossMembers(t *testing.T) {
	c := run(t, ClusterConfig{Config: Config{N: 3, K: 3}, Seed: 3}, 60, everyOther(5))
	// 5 messages x 3 senders x 3 deliverers = 45 samples.
	if got := c.Delay.Count(); got != 45 {
		t.Errorf("delay samples = %d, want 45", got)
	}
	if d := c.Delay.MeanRTD(); d < 0 || d > 1 {
		t.Errorf("mean delay = %v", d)
	}
}

func TestCrashedMemberStopsDelivering(t *testing.T) {
	failAt := sim.StartOfSubrun(3)
	c := run(t, ClusterConfig{
		Config:   Config{N: 3, K: 2},
		Seed:     4,
		Injector: fault.Crash{Proc: 2, At: failAt},
	}, 200, everyOther(20))
	// The dead member's log froze around the crash.
	dead := len(c.DeliveredLog[2])
	alive := len(c.DeliveredLog[0])
	if dead >= alive {
		t.Errorf("dead member delivered %d, alive %d", dead, alive)
	}
	for _, id := range c.DeliveredLog[2] {
		_ = id // log exists and is well-formed
	}
	if c.Crashed(0) || !c.Crashed(mid.ProcID(2)) {
		t.Error("Crashed accessor wrong")
	}
}

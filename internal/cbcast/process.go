package cbcast

import (
	"fmt"

	"urcgc/internal/mid"
	"urcgc/internal/vclock"
	"urcgc/internal/wire"
)

// Transport is how a CBCAST process reaches its peers (same contract as the
// urcgc transport: Broadcast reaches every other member).
type Transport interface {
	Send(dst mid.ProcID, pdu wire.PDU)
	Broadcast(pdu wire.PDU)
}

// Callbacks surface protocol events.
type Callbacks struct {
	// OnDeliver runs once per message delivered at this process.
	OnDeliver func(m *Data)
	// OnViewInstalled runs when a flush completes and the new view is
	// adopted: the Figure 5 agreement point.
	OnViewInstalled func(epoch int32, alive []bool)
	// OnDiscard runs when a waiting message is dropped at a view change
	// because its causal past died with the removed members.
	OnDiscard func(m *Data)
}

// Process is one CBCAST protocol entity, driven like the urcgc one: a
// StartRound tick per round and Recv per delivered PDU, single-goroutine.
type Process struct {
	id  mid.ProcID
	cfg Config
	tp  Transport
	cb  Callbacks

	vt       vclock.VT // delivery vector
	view     []bool
	epoch    int32
	retained map[key]*Data // unstable messages (sent or delivered)
	ackMat   []vclock.VT   // last known delivery vector per member
	waiting  []*Data
	outbox   [][]byte

	subrun       int64
	heardThisSub []bool
	silence      []int
	deliveredNew bool // delivered something since last send/ack
	sinceAck     int

	ph          phase
	suspended   bool
	curMgr      mid.ProcID // manager of the in-progress flush; None when normal
	flushDead   []bool
	flushEpoch  int32
	phaseSubs   int
	collected   map[mid.ProcID]*Flush
	flushMsgs   []*Data
	acked       []bool
	mgrSilence  int
	pendingData []*Data

	// Stats for reports and tests.
	Stats Stats
}

// Stats counts externally observable CBCAST activity.
type Stats struct {
	Sent       int
	Delivered  int
	Acks       int
	Flushes    int // flush protocols this process completed (view installs)
	Discarded  int
	SuspendedT int64 // rounds spent suspended (the blocking cost)
}

// ackEvery spaces explicit stability messages when idle.
const ackEvery = 2

// NewProcess returns a CBCAST entity.
func NewProcess(id mid.ProcID, cfg Config, tp Transport, cb Callbacks) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if int(id) >= cfg.N || id < 0 {
		return nil, fmt.Errorf("cbcast: id %d outside group of %d", id, cfg.N)
	}
	p := &Process{
		id:           id,
		cfg:          cfg,
		tp:           tp,
		cb:           cb,
		vt:           vclock.New(cfg.N),
		view:         make([]bool, cfg.N),
		retained:     make(map[key]*Data),
		ackMat:       make([]vclock.VT, cfg.N),
		heardThisSub: make([]bool, cfg.N),
		silence:      make([]int, cfg.N),
	}
	for i := range p.view {
		p.view[i] = true
		p.ackMat[i] = vclock.New(cfg.N)
	}
	p.curMgr = mid.None
	return p, nil
}

// ID returns the process identifier.
func (p *Process) ID() mid.ProcID { return p.id }

// VT returns the delivery vector (not a copy; do not modify).
func (p *Process) VT() vclock.VT { return p.vt }

// Alive reports whether q is in the current view.
func (p *Process) Alive(q mid.ProcID) bool {
	return q >= 0 && int(q) < len(p.view) && p.view[q]
}

// Epoch returns the current view epoch.
func (p *Process) Epoch() int32 { return p.epoch }

// Suspended reports whether a flush currently blocks normal processing —
// the cost urcgc avoids.
func (p *Process) Suspended() bool { return p.suspended }

// RetainedLen returns the number of unstable messages buffered.
func (p *Process) RetainedLen() int { return len(p.retained) }

// WaitingLen returns the causal waiting queue length.
func (p *Process) WaitingLen() int { return len(p.waiting) + len(p.pendingData) }

// Submit queues a payload for broadcast.
func (p *Process) Submit(payload []byte) {
	p.outbox = append(p.outbox, payload)
}

// manager returns the lowest-ranked member of the current view.
func (p *Process) manager() mid.ProcID {
	for i, a := range p.view {
		if a {
			return mid.ProcID(i)
		}
	}
	return 0
}

// StartRound drives the process at the start of round r (subruns are two
// rounds, matching the urcgc clocking so the comparison is apples to
// apples). All protocol activity happens at even rounds.
func (p *Process) StartRound(r int) {
	if p.suspended {
		p.Stats.SuspendedT++
	}
	if r%2 != 0 {
		return
	}
	p.subrun = int64(r / 2)

	if p.ph != phaseNormal || p.suspended {
		p.flushTick()
	} else {
		p.normalTick()
	}

	// Silence bookkeeping for failure detection (manager's duty, but all
	// members track it so a successor manager can take over).
	anyTraffic := false
	for q := range p.heardThisSub {
		if p.heardThisSub[q] {
			anyTraffic = true
			break
		}
	}
	for q := range p.silence {
		qp := mid.ProcID(q)
		if qp == p.id || !p.view[q] {
			continue
		}
		if p.heardThisSub[q] {
			p.silence[q] = 0
		} else if anyTraffic {
			p.silence[q]++
		}
		p.heardThisSub[q] = false
	}
	if p.ph == phaseNormal && !p.suspended {
		dead := make([]bool, p.cfg.N)
		found := false
		for q := range p.silence {
			if p.view[q] && mid.ProcID(q) != p.id && p.silence[q] >= p.cfg.K {
				dead[q] = true
				found = true
			}
		}
		// The acting manager is the lowest-ranked member not itself
		// suspected dead: if the real manager died silently before ever
		// announcing a flush, the next in line must take over.
		acting := p.id
		for q := range p.view {
			if p.view[q] && !dead[q] {
				acting = mid.ProcID(q)
				break
			}
		}
		if found && acting == p.id {
			p.startFlush(dead)
		}
	}
}

func (p *Process) normalTick() {
	sentData := false
	if len(p.outbox) > 0 {
		payload := p.outbox[0]
		p.outbox = p.outbox[1:]
		p.vt.Tick(int(p.id)) // own delivery of own message
		m := &Data{
			Sender:    p.id,
			TS:        p.vt.Clone(),
			Delivered: p.vt.Clone(),
			Payload:   payload,
		}
		p.retained[key{p.id, m.TS[p.id]}] = m
		p.ackMat[p.id] = p.vt.Clone()
		p.Stats.Sent++
		p.Stats.Delivered++
		if p.cb.OnDeliver != nil {
			p.cb.OnDeliver(m)
		}
		p.tp.Broadcast(m)
		sentData = true
		p.deliveredNew = false
		p.sinceAck = 0
	}
	if !sentData {
		p.sinceAck++
		if p.deliveredNew || (len(p.retained) > 0 && p.sinceAck >= ackEvery) {
			p.ackMat[p.id] = p.vt.Clone()
			p.Stats.Acks++
			p.tp.Broadcast(&Ack{Sender: p.id, Delivered: p.vt.Clone()})
			p.deliveredNew = false
			p.sinceAck = 0
		}
	}
	p.compactStable()
}

// Recv handles one delivered PDU.
func (p *Process) Recv(src mid.ProcID, pdu wire.PDU) {
	if src >= 0 && int(src) < len(p.heardThisSub) {
		p.heardThisSub[src] = true
	}
	switch v := pdu.(type) {
	case *Data:
		if p.suspended {
			p.pendingData = append(p.pendingData, v)
			return
		}
		p.acceptData(v)
	case *Ack:
		p.noteVector(v.Sender, v.Delivered)
	case *flushAck:
		if p.ph == phaseAckWait && v.Epoch == p.flushEpoch && int(v.Sender) < p.cfg.N {
			p.acked[v.Sender] = true
		}
	case *FlushReq:
		p.onFlushReq(v)
	case *Flush:
		if p.ph == phaseCollect && v.Epoch == p.flushEpoch {
			p.collected[v.Sender] = v
		}
	case *FlushData:
		p.onFlushData(v)
	case *View:
		p.onView(v)
	}
}

func (p *Process) acceptData(m *Data) {
	p.noteVector(m.Sender, m.Delivered)
	k := key{m.Sender, m.TS[m.Sender]}
	if m.TS[m.Sender] <= p.vt[m.Sender] {
		return // already delivered
	}
	if _, dup := p.retained[k]; dup {
		return
	}
	for _, w := range p.waiting {
		if w.Sender == m.Sender && w.TS[m.Sender] == m.TS[m.Sender] {
			return // already waiting
		}
	}
	if vclock.Deliverable(m.TS, int(m.Sender), p.vt) {
		p.deliver(m)
		p.cascade()
		return
	}
	p.waiting = append(p.waiting, m)
}

func (p *Process) deliver(m *Data) {
	p.vt[m.Sender] = m.TS[m.Sender]
	p.retained[key{m.Sender, m.TS[m.Sender]}] = m
	p.deliveredNew = true
	p.Stats.Delivered++
	if p.cb.OnDeliver != nil {
		p.cb.OnDeliver(m)
	}
}

func (p *Process) cascade() {
	for progress := true; progress; {
		progress = false
		rest := p.waiting[:0]
		for _, m := range p.waiting {
			if vclock.Deliverable(m.TS, int(m.Sender), p.vt) {
				p.deliver(m)
				progress = true
			} else {
				rest = append(rest, m)
			}
		}
		p.waiting = rest
	}
}

func (p *Process) noteVector(src mid.ProcID, v vclock.VT) {
	if src < 0 || int(src) >= len(p.ackMat) {
		return
	}
	p.ackMat[src].Merge(v)
}

// compactStable drops retained messages delivered everywhere in the view.
func (p *Process) compactStable() {
	for k := range p.retained {
		stable := true
		for q, alive := range p.view {
			if !alive {
				continue
			}
			if p.ackMat[q][k.sender] < k.seq {
				stable = false
				break
			}
		}
		if stable {
			delete(p.retained, k)
		}
	}
}

// ---- flush protocol ----

func (p *Process) startFlush(dead []bool) {
	p.curMgr = p.id
	p.flushEpoch = p.epoch + 1
	p.flushDead = dead
	p.ph = phaseCollect
	p.suspended = true
	p.phaseSubs = 0
	p.collected = map[mid.ProcID]*Flush{p.id: {
		Sender: p.id, Epoch: p.flushEpoch, Delivered: p.vt.Clone(), Unstable: p.unstableList(),
	}}
	p.acked = make([]bool, p.cfg.N)
	p.mgrSilence = 0
}

func (p *Process) unstableList() []*Data {
	out := make([]*Data, 0, len(p.retained))
	for _, m := range p.retained {
		out = append(out, m)
	}
	// Deterministic order (by sender, then seq) for reproducible runs.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Sender < a.Sender || (b.Sender == a.Sender && b.TS[b.Sender] < a.TS[a.Sender]) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}

func (p *Process) onFlushReq(f *FlushReq) {
	if f.Epoch <= p.epoch {
		return
	}
	p.suspended = true
	p.flushEpoch = f.Epoch
	p.flushDead = append([]bool(nil), f.Dead...)
	p.curMgr = f.Manager
	p.mgrSilence = 0
	if f.Manager == p.id {
		return // we are flushing as manager already
	}
	p.ph = phaseNormal // member role: respond, wait
	p.tp.Send(f.Manager, &Flush{
		Sender: p.id, Epoch: f.Epoch, Delivered: p.vt.Clone(), Unstable: p.unstableList(),
	})
}

func (p *Process) onFlushData(f *FlushData) {
	if f.Epoch != p.flushEpoch || !p.suspended {
		return
	}
	p.curMgr = f.Manager
	p.mgrSilence = 0
	for _, m := range f.Msgs {
		p.acceptFlushed(m)
	}
	p.tp.Send(f.Manager, &flushAck{Sender: p.id, Epoch: f.Epoch})
}

// acceptFlushed takes a re-disseminated unstable message during a flush;
// unlike acceptData it is not blocked by the suspension (the flush is the
// one place where catching up happens).
func (p *Process) acceptFlushed(m *Data) {
	if m.TS[m.Sender] <= p.vt[m.Sender] {
		return
	}
	for _, w := range p.waiting {
		if w.Sender == m.Sender && w.TS[m.Sender] == m.TS[m.Sender] {
			return
		}
	}
	if vclock.Deliverable(m.TS, int(m.Sender), p.vt) {
		p.deliver(m)
		p.cascade()
		return
	}
	p.waiting = append(p.waiting, m)
}

func (p *Process) onView(v *View) {
	if v.Epoch <= p.epoch {
		return
	}
	p.epoch = v.Epoch
	copy(p.view, v.Alive)
	p.suspended = false
	p.ph = phaseNormal
	p.curMgr = mid.None
	p.Stats.Flushes++
	// Messages whose causal past died with the removed members can never
	// be delivered: discard them, consistently everywhere (all members saw
	// the same flush dissemination).
	rest := p.waiting[:0]
	for _, m := range p.waiting {
		undeliverable := false
		for q, alive := range p.view {
			if !alive && m.TS[q] > p.vt[q] && mid.ProcID(q) != m.Sender {
				undeliverable = true
				break
			}
		}
		if !alive(p.view, m.Sender) && m.TS[m.Sender] > p.vt[m.Sender]+1 {
			undeliverable = true
		}
		if undeliverable {
			p.Stats.Discarded++
			if p.cb.OnDiscard != nil {
				p.cb.OnDiscard(m)
			}
			continue
		}
		rest = append(rest, m)
	}
	p.waiting = rest
	if p.cb.OnViewInstalled != nil {
		p.cb.OnViewInstalled(p.epoch, append([]bool(nil), p.view...))
	}
	// Resume: queued data received during the flush.
	pend := p.pendingData
	p.pendingData = nil
	for _, m := range pend {
		p.acceptData(m)
	}
	p.cascade()
}

func alive(view []bool, q mid.ProcID) bool {
	return q >= 0 && int(q) < len(view) && view[q]
}

// flushTick advances the manager's flush state machine and the member-side
// retries, one tick per subrun. Every phase lasts K subruns (each subrun
// re-sends, making the phase reliable against omissions), which is where
// the K(5f+6) cost shape comes from.
func (p *Process) flushTick() {
	mgr := p.curMgr
	if mgr == mid.None {
		mgr = p.manager()
	}
	if mgr != p.id {
		// Member: re-send our Flush while the manager collects; watch for
		// manager death and take over if we are the next eligible rank.
		if p.suspended {
			p.mgrSilence++
			if p.mgrSilence >= 2*p.cfg.K && p.nextEligibleAfter(mgr) == p.id {
				// The flush manager died mid-flush: it joins the dead set
				// and the flush restarts under us.
				dead := append([]bool(nil), p.flushDead...)
				if dead == nil {
					dead = make([]bool, p.cfg.N)
				}
				if int(mgr) < len(dead) {
					dead[mgr] = true
				}
				p.view[mgr] = false
				p.startFlush(dead)
				return
			}
			p.tp.Send(mgr, &Flush{
				Sender: p.id, Epoch: p.flushEpoch, Delivered: p.vt.Clone(), Unstable: p.unstableList(),
			})
		}
		return
	}

	// Manager role.
	switch p.ph {
	case phaseCollect:
		p.phaseSubs++
		p.tp.Broadcast(&FlushReq{Manager: p.id, Epoch: p.flushEpoch, Dead: p.flushDead})
		if p.phaseSubs >= 2*p.cfg.K {
			// Collected what we will collect; merge and re-disseminate.
			union := make(map[key]*Data)
			for _, fl := range p.collected {
				for _, m := range fl.Unstable {
					union[key{m.Sender, m.TS[m.Sender]}] = m
				}
			}
			msgs := make([]*Data, 0, len(union))
			for _, m := range union {
				msgs = append(msgs, m)
			}
			sortData(msgs)
			for _, m := range msgs {
				p.acceptFlushed(m)
			}
			p.flushMsgs = msgs
			p.ph = phaseAckWait
			p.phaseSubs = 0
		}
	case phaseAckWait:
		p.phaseSubs++
		p.tp.Broadcast(&FlushData{Manager: p.id, Epoch: p.flushEpoch, Msgs: p.flushMsgs})
		allAcked := true
		for q := range p.view {
			qp := mid.ProcID(q)
			if !p.view[q] || p.flushDead[q] || qp == p.id {
				continue
			}
			if !p.acked[q] {
				allAcked = false
				break
			}
		}
		if allAcked || p.phaseSubs >= 2*p.cfg.K {
			newAlive := make([]bool, p.cfg.N)
			for q := range newAlive {
				newAlive[q] = p.view[q] && !p.flushDead[q]
			}
			v := &View{Manager: p.id, Epoch: p.flushEpoch, Alive: newAlive}
			p.tp.Broadcast(v)
			p.onView(v)
		}
	}
}

// nextEligibleAfter returns the lowest-ranked member after mgr that is in
// the view and not part of the flush's dead set — the member entitled to
// take over a dead manager's flush.
func (p *Process) nextEligibleAfter(mgr mid.ProcID) mid.ProcID {
	for i := int(mgr) + 1; i < p.cfg.N; i++ {
		if p.view[i] && (p.flushDead == nil || !p.flushDead[i]) {
			return mid.ProcID(i)
		}
	}
	return mgr
}

func sortData(msgs []*Data) {
	for i := 1; i < len(msgs); i++ {
		for j := i; j > 0; j-- {
			a, b := msgs[j-1], msgs[j]
			if b.Sender < a.Sender || (b.Sender == a.Sender && b.TS[b.Sender] < a.TS[a.Sender]) {
				msgs[j-1], msgs[j] = b, a
			} else {
				break
			}
		}
	}
}

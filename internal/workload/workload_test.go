package workload

import (
	"testing"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

func cluster(t *testing.T, n int, seed int64) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.ClusterConfig{
		Config: core.Config{N: n, K: 3, R: 8, SelfExclusion: true},
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runWith(t *testing.T, c *core.Cluster, g *Generator, maxRounds, minRounds int) core.RunResult {
	t.Helper()
	res, err := c.Run(core.RunOptions{
		MaxRounds: maxRounds, MinRounds: minRounds,
		OnRound:           g.OnRound,
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBudgetedWorkloadDelivers(t *testing.T) {
	c := cluster(t, 4, 1)
	g := New(c, 7, WithPerProc(6), WithLimit(100))
	res := runWith(t, c, g, 400, 2*2*6)
	if res.QuiescentAtRound < 0 {
		t.Fatal("never quiescent")
	}
	if g.Submitted != 4*6 {
		t.Errorf("Submitted = %d, want 24", g.Submitted)
	}
	if !g.Done() {
		t.Error("budget should be exhausted")
	}
	for i := 0; i < 4; i++ {
		if got := c.Proc(mid.ProcID(i)).Processed().Sum(); got != 24 {
			t.Errorf("proc %d processed %d", i, got)
		}
	}
}

func TestShapesProduceExpectedLabels(t *testing.T) {
	for _, shape := range []Shape{Independent, Ring, Temporal, RandomPeer} {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			c := cluster(t, 4, 2)
			g := New(c, 9, WithShape(shape), WithPerProc(5))
			res := runWith(t, c, g, 400, 2*2*5)
			if res.QuiescentAtRound < 0 {
				t.Fatal("never quiescent")
			}
			if len(c.ProcessedLog[0]) == 0 {
				t.Fatal("nothing processed")
			}
			// Every shape must still deliver the full budget everywhere.
			total := c.Proc(0).Processed().Sum()
			if total != 20 {
				t.Errorf("processed %d, want 20", total)
			}
		})
	}
}

func TestRateZeroSubmitsNothing(t *testing.T) {
	c := cluster(t, 3, 3)
	g := New(c, 1, WithRate(0))
	_, err := c.Run(core.RunOptions{MaxRounds: 20, OnRound: g.OnRound})
	if err != nil {
		t.Fatal(err)
	}
	if g.Submitted != 0 {
		t.Errorf("Submitted = %d", g.Submitted)
	}
	if g.Done() {
		t.Error("no budget set: never done")
	}
}

func TestLimitStopsSubmissions(t *testing.T) {
	c := cluster(t, 3, 4)
	g := New(c, 1, WithLimit(3)) // 3 subruns of workload at rate 1
	res := runWith(t, c, g, 200, 20)
	if res.QuiescentAtRound < 0 {
		t.Fatal("never quiescent")
	}
	if g.Submitted != 3*3 {
		t.Errorf("Submitted = %d, want 9", g.Submitted)
	}
}

func TestBurst(t *testing.T) {
	c := cluster(t, 3, 5)
	if err := Burst(c, 7, nil); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(core.RunOptions{
		MaxRounds: 300, MinRounds: 2 * 2 * 7,
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("never quiescent")
	}
	for i := 0; i < 3; i++ {
		if got := c.Proc(mid.ProcID(i)).Processed().Sum(); got != 21 {
			t.Errorf("proc %d processed %d, want 21", i, got)
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	runOnce := func() int {
		c := cluster(t, 4, 11)
		g := New(c, 13, WithRate(0.5), WithLimit(20), WithShape(RandomPeer))
		runWith(t, c, g, 300, 2*20*2)
		return g.Submitted
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Errorf("same seeds, different submissions: %d vs %d", a, b)
	}
	if a == 0 {
		t.Error("nothing submitted")
	}
}

func TestShapeStrings(t *testing.T) {
	for s, want := range map[Shape]string{
		Independent: "independent", Ring: "ring", Temporal: "temporal",
		RandomPeer: "random-peer", Shape(9): "shape(?)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

// Package workload generates the user-message loads the experiments drive
// the protocols with: who submits, when, with which causal labels. The
// paper's simulations use steady per-round generation ("up to one message a
// round") against several dependency shapes; the generators here cover that
// plus bursts and budgeted runs, all deterministic under a seed.
package workload

import (
	"math/rand"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

// Shape selects how a new message is causally labelled.
type Shape int

// Dependency shapes.
const (
	// Independent: no explicit labels; only the implicit own-sequence
	// chain. Maximum concurrency.
	Independent Shape = iota
	// Ring: depend on the latest processed message of the previous
	// process in the ring — one cross edge per message, the intermediate
	// interpretation at its typical density.
	Ring
	// Temporal: depend on the latest processed message of every sequence
	// (what vector-clock protocols enforce implicitly). Minimum
	// concurrency.
	Temporal
	// RandomPeer: depend on the latest processed message of one uniformly
	// chosen other process.
	RandomPeer
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Independent:
		return "independent"
	case Ring:
		return "ring"
	case Temporal:
		return "temporal"
	case RandomPeer:
		return "random-peer"
	default:
		return "shape(?)"
	}
}

// Generator drives submissions into a simulated cluster. OnRound is meant
// to be passed as core.RunOptions.OnRound.
type Generator struct {
	c       *core.Cluster
	rng     *rand.Rand
	shape   Shape
	rate    float64 // submission probability per process per subrun
	limit   int     // subruns of workload; 0 = unlimited
	perProc int     // max messages per process; 0 = unlimited
	payload []byte

	sent []int
	// Submitted counts accepted submissions.
	Submitted int
}

// Option configures a Generator.
type Option func(*Generator)

// WithShape selects the dependency shape (default Ring).
func WithShape(s Shape) Option { return func(g *Generator) { g.shape = s } }

// WithRate sets the per-process per-subrun submission probability
// (default 1.0 — one message per round, the paper's maximum service rate).
func WithRate(r float64) Option { return func(g *Generator) { g.rate = r } }

// WithLimit bounds the workload to the first n subruns.
func WithLimit(n int) Option { return func(g *Generator) { g.limit = n } }

// WithPerProc bounds each process's total submissions.
func WithPerProc(n int) Option { return func(g *Generator) { g.perProc = n } }

// WithPayload sets the message payload (default 64 zero bytes).
func WithPayload(p []byte) Option { return func(g *Generator) { g.payload = p } }

// New returns a generator for the cluster, deterministic under seed.
func New(c *core.Cluster, seed int64, opts ...Option) *Generator {
	g := &Generator{
		c:       c,
		rng:     rand.New(rand.NewSource(seed)),
		shape:   Ring,
		rate:    1.0,
		payload: make([]byte, 64),
		sent:    make([]int, c.N()),
	}
	for _, o := range opts {
		o(g)
	}
	return g
}

// OnRound submits this round's messages. Pass it to core.RunOptions.
func (g *Generator) OnRound(round int) {
	if round%2 != 0 {
		return
	}
	if g.limit > 0 && round/2 >= g.limit {
		return
	}
	for i := 0; i < g.c.N(); i++ {
		p := mid.ProcID(i)
		if !g.c.Active(p) {
			continue
		}
		if g.perProc > 0 && g.sent[i] >= g.perProc {
			continue
		}
		if g.rng.Float64() >= g.rate {
			continue
		}
		if g.submit(p) {
			g.sent[i]++
			g.Submitted++
		}
	}
}

// Done reports whether every process has exhausted its per-process budget
// (always false when no budget is set).
func (g *Generator) Done() bool {
	if g.perProc == 0 {
		return false
	}
	for i := 0; i < g.c.N(); i++ {
		if g.c.Active(mid.ProcID(i)) && g.sent[i] < g.perProc {
			return false
		}
	}
	return true
}

func (g *Generator) submit(p mid.ProcID) bool {
	var err error
	switch g.shape {
	case Temporal:
		_, err = g.c.SubmitCausal(p, g.payload)
	default:
		_, err = g.c.Submit(p, g.payload, g.deps(p))
	}
	return err == nil
}

func (g *Generator) deps(p mid.ProcID) mid.DepList {
	n := g.c.N()
	pick := func(q mid.ProcID) mid.DepList {
		if q == p {
			return nil
		}
		if s := g.c.Proc(p).Processed()[q]; s > 0 {
			return mid.DepList{{Proc: q, Seq: s}}
		}
		return nil
	}
	switch g.shape {
	case Independent:
		return nil
	case Ring:
		return pick(mid.ProcID((int(p) + n - 1) % n))
	case RandomPeer:
		if n < 2 {
			return nil
		}
		q := mid.ProcID(g.rng.Intn(n))
		for q == p {
			q = mid.ProcID(g.rng.Intn(n))
		}
		return pick(q)
	default:
		return nil
	}
}

// Burst queues count messages per process immediately (outside the round
// schedule), as Figure 6's fixed 480-message budget does; the protocol's
// one-per-round pacing and flow control then spread them out.
func Burst(c *core.Cluster, perProc int, payload []byte) error {
	if payload == nil {
		payload = make([]byte, 64)
	}
	for i := 0; i < c.N(); i++ {
		for k := 0; k < perProc; k++ {
			if _, err := c.Submit(mid.ProcID(i), payload, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

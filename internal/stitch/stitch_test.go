package stitch

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"urcgc/internal/lifecycle"
)

func span(mid, outcome string) lifecycle.SpanView {
	return lifecycle.SpanView{MID: mid, Outcome: outcome}
}

// TestStitchJoinsByGroupAndMID pins the join key: the same MID in two
// groups is two different messages, and the same (group, MID) across two
// nodes is one.
func TestStitchJoinsByGroupAndMID(t *testing.T) {
	nodes := []NodeTrace{
		{Addr: "a", Reports: []lifecycle.Report{
			{Node: 0, Group: 0, Recent: []lifecycle.SpanView{span("p0#1", "processed")}},
			{Node: 0, Group: 1, Recent: []lifecycle.SpanView{span("p0#1", "processed")}},
		}},
		{Addr: "b", Reports: []lifecycle.Report{
			{Node: 1, Group: 0, Recent: []lifecycle.SpanView{span("p0#1", "processed")}},
		}},
	}
	r := Stitch(nodes)
	if len(r.Messages) != 2 {
		t.Fatalf("stitched %d messages, want 2 (MID recurs across groups)", len(r.Messages))
	}
	byGroup := map[int]*Message{}
	for _, m := range r.Messages {
		byGroup[m.Group] = m
	}
	if len(byGroup[0].Observations) != 2 || len(byGroup[1].Observations) != 1 {
		t.Fatalf("observations: group0=%d group1=%d, want 2/1",
			len(byGroup[0].Observations), len(byGroup[1].Observations))
	}
	if byGroup[0].Origin != 0 {
		t.Fatalf("origin = %d, want 0", byGroup[0].Origin)
	}
}

// TestStitchDeliverSkew checks the broadcast→remote-deliver arithmetic
// against hand-computed stamps.
func TestStitchDeliverSkew(t *testing.T) {
	origin := span("p0#3", "processed")
	origin.BroadcastNs = 1_000_000
	origin.ProcessedNs = 1_200_000
	origin.EndToEndSeconds = 0.0002
	remote := span("p0#3", "processed")
	remote.ProcessedNs = 1_750_000
	remote.EndToEndSeconds = 0.00075
	nodes := []NodeTrace{
		{Reports: []lifecycle.Report{{Node: 0, Group: 2, Recent: []lifecycle.SpanView{origin}}}},
		{Reports: []lifecycle.Report{{Node: 1, Group: 2, Recent: []lifecycle.SpanView{remote}}}},
	}
	r := Stitch(nodes)
	if len(r.Messages) != 1 {
		t.Fatalf("stitched %d messages", len(r.Messages))
	}
	m := r.Messages[0]
	if m.BroadcastNs != 1_000_000 {
		t.Fatalf("broadcast = %d", m.BroadcastNs)
	}
	if got := m.DeliverSkewNs[1]; got != 750_000 {
		t.Fatalf("deliver skew = %d, want 750000", got)
	}
	if _, ok := m.DeliverSkewNs[0]; ok {
		t.Fatal("origin must not have a deliver skew against itself")
	}
	if m.SlownessSeconds != 0.00075 {
		t.Fatalf("slowness = %v, want the worst member's 0.00075", m.SlownessSeconds)
	}
}

// TestStitchBlockedAttribution pins the acceptance shape: a message stuck
// waiting names the blocking member (the dependency MID's proc) and the
// dependency MID, and reports whether the dependency exists anywhere.
func TestStitchBlockedAttribution(t *testing.T) {
	stuck := span("p0#2", "in-flight")
	stuck.Stuck = true
	stuck.AgeSeconds = 4.2
	stuck.Blocking = []string{"p1#999"}
	nodes := []NodeTrace{
		{Reports: []lifecycle.Report{{Node: 2, Group: 0, Slowest: []lifecycle.SpanView{stuck}}}},
	}
	r := Stitch(nodes)
	m := r.Messages[0]
	if len(m.Blocked) != 1 {
		t.Fatalf("blocked = %+v", m.Blocked)
	}
	b := m.Blocked[0]
	if b.DepMID != "p1#999" || b.DepMember != 1 || b.SeenAnywhere {
		t.Fatalf("attribution = %+v, want member 1's unseen p1#999", b)
	}
	if len(m.StuckAt) != 1 || m.StuckAt[0] != 2 {
		t.Fatalf("stuck at %v", m.StuckAt)
	}
	if m.SlownessSeconds != 4.2 {
		t.Fatalf("slowness = %v (in-flight age must rank)", m.SlownessSeconds)
	}
	var sb strings.Builder
	r.Write(&sb, 5)
	out := sb.String()
	if !strings.Contains(out, "p1#999") || !strings.Contains(out, "member 1") {
		t.Fatalf("text report does not name the blocking member and MID:\n%s", out)
	}
}

// TestStitchRanksSlowestFirst checks Top ordering.
func TestStitchRanksSlowestFirst(t *testing.T) {
	fast := span("p0#1", "processed")
	fast.EndToEndSeconds = 0.001
	slow := span("p0#2", "processed")
	slow.EndToEndSeconds = 0.5
	nodes := []NodeTrace{
		{Reports: []lifecycle.Report{{Node: 0, Group: 0, Recent: []lifecycle.SpanView{fast, slow}}}},
	}
	top := Stitch(nodes).Top(1)
	if len(top) != 1 || top[0].MID != "p0#2" {
		t.Fatalf("top = %+v", top)
	}
}

// TestCollectBothShapes serves one multi-group member, one single-group
// member and one dead address; Collect must decode both report shapes and
// tolerate the failure.
func TestCollectBothShapes(t *testing.T) {
	multi := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/trace" {
			http.NotFound(w, r)
			return
		}
		_ = json.NewEncoder(w).Encode(lifecycle.MultiReport{Node: 0, Groups: []lifecycle.Report{
			{Node: 0, Group: 0, Recent: []lifecycle.SpanView{span("p0#1", "processed")}},
			{Node: 0, Group: 1, Recent: []lifecycle.SpanView{span("p0#1", "processed")}},
		}})
	}))
	defer multi.Close()
	single := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(lifecycle.Report{
			Node: 1, Group: 0, Recent: []lifecycle.SpanView{span("p0#1", "processed")},
		})
	}))
	defer single.Close()

	nodes := Collect(Config{Nodes: []string{multi.URL, single.URL, "127.0.0.1:1"}, Group: -1})
	if nodes[0].Err != "" || len(nodes[0].Reports) != 2 {
		t.Fatalf("multi node: %+v", nodes[0])
	}
	if nodes[1].Err != "" || len(nodes[1].Reports) != 1 {
		t.Fatalf("single node: %+v", nodes[1])
	}
	if nodes[2].Err == "" {
		t.Fatal("dead node reported no error")
	}
	r := Stitch(nodes)
	if len(r.Messages) != 2 {
		t.Fatalf("stitched %d messages, want 2", len(r.Messages))
	}

	// A group filter keeps only matching reports, even from the legacy
	// shape that ignores the query parameter.
	nodes = Collect(Config{Nodes: []string{single.URL}, Group: 1})
	if len(nodes[0].Reports) != 0 {
		t.Fatalf("legacy node leaked group-0 report under group=1 filter: %+v", nodes[0].Reports)
	}
}

func TestParseMID(t *testing.T) {
	if p, ok := parseMID("p12#34"); !ok || p != 12 {
		t.Fatalf("parseMID(p12#34) = %d,%v", p, ok)
	}
	for _, bad := range []string{"", "p?#0", "x1#2", "p#2", "p1x#2"} {
		if _, ok := parseMID(bad); ok {
			t.Fatalf("parseMID(%q) accepted", bad)
		}
	}
}

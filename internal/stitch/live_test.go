package stitch

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/nodehttp"
	"urcgc/internal/topics"
)

// Hold levels for the live stuck-message test's drop hook.
const (
	holdNone    = iota
	holdFromOne // member 1's group-1 frames to member 2 are withheld
	holdAll     // all group-1 frames into member 2 are withheld
)

// TestTraceStuckMessageEndToEnd is the acceptance demo as a test: member
// 1 deliberately withholds a group-1 message from member 2, member 0's
// causal send then parks at member 2 behind the dependency it never
// received, and Collect+Stitch over the real per-node /trace surface must
// name the blocking member and the dependency MID.
//
// The hold escalates in two steps: first only member 1's frames to
// member 2 are dropped (so the dependency spreads to members 0 and 1 but
// not 2), then — once the blocked message has parked at member 2 — every
// group-1 frame into member 2 is dropped, which keeps the recovery
// machinery (RECOVER/RETRANSMIT via the decision's most-updated holder)
// from healing the gap under the test. Long rounds make the escalation
// race-free: recovery needs a decision cycle, the escalation needs
// milliseconds.
func TestTraceStuckMessageEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster and timers")
	}
	const (
		n     = 3
		round = 300 * time.Millisecond
	)

	var hold atomic.Int32
	cl, err := topics.NewMultiCluster(topics.Config{
		// K far above what the test can span keeps the one-sided silence
		// from becoming a crash declaration.
		Config: core.Config{
			N: n, K: 600, R: 1202, SelfExclusion: false,
			BatchMax: core.DefaultBatchMax,
		},
		Groups:        2,
		RoundDuration: round,
		Lifecycle: &lifecycle.Options{
			SlowThreshold: 50 * time.Millisecond,
		},
		DropFrame: func(group uint32, src, dst mid.ProcID) bool {
			switch hold.Load() {
			case holdFromOne:
				return group == 1 && src == 1 && dst == 2
			case holdAll:
				return group == 1 && dst == 2
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	defer cl.Stop()

	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node := cl.Node(mid.ProcID(i))
		mux := nodehttp.Mux(nodehttp.Options{LifecycleGroups: node.Lifecycles})
		ln, err := nodehttp.Serve("127.0.0.1:0", mux)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		t.Cleanup(func() { ln.Close() })
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Both groups flowing first, so the stitch also joins healthy
	// completed spans.
	if _, err := cl.Node(0).Send(ctx, 0, []byte("ok"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Node(0).Send(ctx, 1, []byte("warm"), nil); err != nil {
		t.Fatal(err)
	}

	// Member 1 broadcasts the dependency while its frames to member 2 are
	// withheld: members 0 and 1 process it, member 2 never receives it.
	hold.Store(holdFromOne)
	dep, err := cl.Node(1).Send(ctx, 1, []byte("withheld"), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Member 0's causal send depends on everything it processed — the
	// withheld message included. Member 2 receives it (0→2 still flows)
	// and parks it behind the dependency it lacks.
	blocked, err := cl.Node(0).SendCausal(ctx, 1, []byte("blocked"))
	if err != nil {
		t.Fatal(err)
	}

	// As soon as the blocked message shows on member 2's /trace, cut all
	// group-1 traffic into member 2 so recovery cannot heal the gap.
	arrival := time.Now().Add(30 * time.Second)
	for {
		nt := collectOne(Config{Nodes: []string{addrs[2]}, Group: 1}.fill(), addrs[2])
		if hasSpan(nt, blocked.String()) {
			break
		}
		if time.Now().After(arrival) {
			t.Fatalf("blocked message never reached member 2: %+v", nt)
		}
		time.Sleep(5 * time.Millisecond)
	}
	hold.Store(holdAll)

	deadline := time.Now().Add(30 * time.Second)
	var rep *Report
	for {
		rep = Stitch(Collect(Config{Nodes: addrs, Group: -1}))
		if blockedOn(rep, blocked.String(), dep.String()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stitched report never attributed the stall to %s:\n%s", dep, dump(rep))
		}
		time.Sleep(100 * time.Millisecond)
	}

	var sb strings.Builder
	rep.Write(&sb, 10)
	out := sb.String()
	if !strings.Contains(out, dep.String()) || !strings.Contains(out, "member 1") {
		t.Fatalf("text report does not name the blocking member and MID:\n%s", out)
	}
}

// hasSpan reports whether one node's collected reports mention the MID.
func hasSpan(nt NodeTrace, mid string) bool {
	for _, rep := range nt.Reports {
		for _, sv := range rep.Slowest {
			if sv.MID == mid {
				return true
			}
		}
		for _, sv := range rep.Recent {
			if sv.MID == mid {
				return true
			}
		}
	}
	return false
}

// blockedOn reports whether the stitched view holds the blocked group-1
// message stuck at member 2, attributed to member 1's withheld dependency
// — which members 0 and 1 did see, so it must read as in flight
// elsewhere.
func blockedOn(r *Report, blockedMID, depMID string) bool {
	for _, m := range r.Messages {
		if m.Group != 1 || m.MID != blockedMID {
			continue
		}
		stuckAt2 := false
		for _, node := range m.StuckAt {
			if node == 2 {
				stuckAt2 = true
			}
		}
		if !stuckAt2 {
			continue
		}
		for _, b := range m.Blocked {
			if b.DepMID == depMID && b.DepMember == 1 && b.SeenAnywhere {
				return true
			}
		}
	}
	return false
}

func dump(r *Report) string {
	var sb strings.Builder
	r.Write(&sb, 0)
	return sb.String()
}

// Package stitch builds the first cross-node observability layer: it
// collects the /trace lifecycle reports from every member of a cluster
// and joins the spans by (group, MID) into one stitched timeline per
// message. MIDs are only unique within a group — every group is an
// independent sequence space — so the group id is part of the join key;
// within a group the same MID names the same message on every member,
// which is what makes the join sound with no wire changes.
//
// From the joined spans it derives what no single node can see:
//
//   - broadcast→remote-deliver skew per member: the origin's BroadcastNs
//     against each remote member's ProcessedNs.
//   - causal-wait attribution: a span stuck waiting lists the MIDs
//     blocking it; the MID's proc field names the member whose missing
//     message blocks delivery, and a sweep over every node's spans tells
//     whether that dependency was ever seen anywhere.
//   - a top-N slowest-messages report across the whole cluster.
package stitch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"urcgc/internal/lifecycle"
	"urcgc/internal/probe"
)

// Config configures one collection sweep.
type Config struct {
	// Nodes lists every member's observability address (host:port or URL).
	Nodes []string
	// Group restricts the sweep to one group id; -1 collects every hosted
	// group.
	Group int
	// Slow and Recent size each node's report (default 32 each).
	Slow, Recent int
	// Timeout bounds each probe (default 3s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (c Config) fill() Config {
	if c.Slow == 0 {
		c.Slow = 32
	}
	if c.Recent == 0 {
		c.Recent = 32
	}
	if c.Timeout == 0 {
		c.Timeout = 3 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Timeout}
	}
	return c
}

// NodeTrace is one member's collected reports (one per hosted group), or
// the error that prevented collection.
type NodeTrace struct {
	Addr    string             `json:"addr"`
	Err     string             `json:"err,omitempty"`
	Reports []lifecycle.Report `json:"reports,omitempty"`
}

// Collect fetches /trace from every node in parallel. Unreachable nodes
// are reported, not fatal: a stitched view of the reachable majority is
// still useful.
func Collect(cfg Config) []NodeTrace {
	cfg = cfg.fill()
	return probe.Fanout(cfg.Nodes, func(_ int, addr string) NodeTrace {
		return collectOne(cfg, addr)
	})
}

func collectOne(cfg Config, addr string) NodeTrace {
	nt := NodeTrace{Addr: addr}
	url := fmt.Sprintf("%s/trace?slow=%d&recent=%d", probe.NormalizeAddr(addr), cfg.Slow, cfg.Recent)
	if cfg.Group >= 0 {
		url += fmt.Sprintf("&group=%d", cfg.Group)
	}
	raw, code, err := probe.Fetch(context.Background(), cfg.Client, url)
	if err != nil {
		nt.Err = err.Error()
		return nt
	}
	if code != http.StatusOK {
		nt.Err = fmt.Sprintf("HTTP %d: %s", code, strings.TrimSpace(string(raw)))
		return nt
	}
	// A multi-group member answers with {"groups":[...]}; a single-group
	// member with one bare Report. The groups key discriminates.
	var multi lifecycle.MultiReport
	if err := json.Unmarshal(raw, &multi); err == nil && len(multi.Groups) > 0 {
		nt.Reports = multi.Groups
	} else {
		var rep lifecycle.Report
		if err := json.Unmarshal(raw, &rep); err != nil {
			nt.Err = fmt.Sprintf("undecodable /trace: %v", err)
			return nt
		}
		nt.Reports = []lifecycle.Report{rep}
	}
	if cfg.Group >= 0 {
		// A legacy single-group node ignores the group filter; drop
		// reports for groups we did not ask about.
		kept := nt.Reports[:0]
		for _, r := range nt.Reports {
			if r.Group == cfg.Group {
				kept = append(kept, r)
			}
		}
		nt.Reports = kept
	}
	return nt
}

// Observation is one member's view of one message.
type Observation struct {
	Node int                `json:"node"`
	Span lifecycle.SpanView `json:"span"`
}

// Attribution names the missing dependency blocking a stuck message: the
// dependency MID, the member whose message it is (the MID's proc), and
// whether any collected node has a span for it at all.
type Attribution struct {
	DepMID       string `json:"dep_mid"`
	DepMember    int    `json:"dep_member"`
	SeenAnywhere bool   `json:"seen_anywhere"`
}

// Message is one stitched cross-node timeline.
type Message struct {
	Group  int    `json:"group"`
	MID    string `json:"mid"`
	Origin int    `json:"origin"`
	// BroadcastNs is the origin's broadcast stamp (0 if the origin's span
	// was not collected).
	BroadcastNs int64 `json:"broadcast_ns,omitempty"`
	// Observations holds each member's span, ordered by node id.
	Observations []Observation `json:"observations"`
	// DeliverSkewNs maps a remote member to ProcessedNs − BroadcastNs:
	// how long after the origin's broadcast that member processed the
	// message. Clock skew between hosts is included by construction; on
	// one host (or with synchronized clocks) it is the true deliver skew.
	DeliverSkewNs map[int]int64 `json:"deliver_skew_ns,omitempty"`
	// StuckAt lists the members where the message is flagged stuck
	// waiting; Blocked attributes the dependencies that block it.
	StuckAt []int         `json:"stuck_at,omitempty"`
	Blocked []Attribution `json:"blocked,omitempty"`
	// SlownessSeconds ranks the message: its worst end-to-end time across
	// members, or its oldest in-flight age if unfinished anywhere.
	SlownessSeconds float64 `json:"slowness_seconds"`
}

// Report is the stitched cross-cluster view.
type Report struct {
	Nodes    []NodeTrace `json:"nodes"`
	Messages []*Message  `json:"messages"`
}

type joinKey struct {
	group int
	mid   string
}

// parseMID extracts the proc field of the canonical "p<proc>#<seq>" MID
// rendering; ok is false for the zero MID or foreign formats.
func parseMID(s string) (proc int, ok bool) {
	if !strings.HasPrefix(s, "p") {
		return 0, false
	}
	rest, _, found := strings.Cut(s[1:], "#")
	if !found {
		return 0, false
	}
	n := 0
	for _, r := range rest {
		if r < '0' || r > '9' {
			return 0, false
		}
		n = n*10 + int(r-'0')
	}
	return n, len(rest) > 0
}

// Stitch joins every collected span by (group, MID) and derives the
// cross-node timeline of each message, ranked slowest first.
func Stitch(nodes []NodeTrace) *Report {
	byKey := make(map[joinKey]*Message)
	ordered := []*Message{}
	get := func(group int, mid string) *Message {
		k := joinKey{group, mid}
		m, ok := byKey[k]
		if !ok {
			m = &Message{Group: group, MID: mid}
			if proc, ok := parseMID(mid); ok {
				m.Origin = proc
			}
			byKey[k] = m
			ordered = append(ordered, m)
		}
		return m
	}
	for _, nt := range nodes {
		for _, rep := range nt.Reports {
			for _, sv := range rep.Slowest {
				obs := Observation{Node: rep.Node, Span: sv}
				get(rep.Group, sv.MID).Observations = append(get(rep.Group, sv.MID).Observations, obs)
			}
			for _, sv := range rep.Recent {
				obs := Observation{Node: rep.Node, Span: sv}
				get(rep.Group, sv.MID).Observations = append(get(rep.Group, sv.MID).Observations, obs)
			}
		}
	}
	for _, m := range ordered {
		finish(m, byKey)
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].SlownessSeconds > ordered[j].SlownessSeconds
	})
	return &Report{Nodes: nodes, Messages: ordered}
}

// finish derives one message's cross-node facts from its joined spans.
func finish(m *Message, byKey map[joinKey]*Message) {
	sort.Slice(m.Observations, func(i, j int) bool {
		return m.Observations[i].Node < m.Observations[j].Node
	})
	for _, o := range m.Observations {
		if o.Node == m.Origin && o.Span.BroadcastNs != 0 {
			m.BroadcastNs = o.Span.BroadcastNs
		}
	}
	seenDeps := map[string]bool{}
	for _, o := range m.Observations {
		s := o.Span
		if m.BroadcastNs != 0 && o.Node != m.Origin && s.ProcessedNs != 0 {
			if m.DeliverSkewNs == nil {
				m.DeliverSkewNs = map[int]int64{}
			}
			m.DeliverSkewNs[o.Node] = s.ProcessedNs - m.BroadcastNs
		}
		if s.EndToEndSeconds > m.SlownessSeconds {
			m.SlownessSeconds = s.EndToEndSeconds
		}
		if s.Outcome == "in-flight" && s.AgeSeconds > m.SlownessSeconds {
			m.SlownessSeconds = s.AgeSeconds
		}
		if s.Stuck {
			m.StuckAt = append(m.StuckAt, o.Node)
			for _, dep := range s.Blocking {
				if seenDeps[dep] {
					continue
				}
				seenDeps[dep] = true
				at := Attribution{DepMID: dep, DepMember: -1}
				if proc, ok := parseMID(dep); ok {
					at.DepMember = proc
				}
				_, at.SeenAnywhere = byKey[joinKey{m.Group, dep}]
				m.Blocked = append(m.Blocked, at)
			}
		}
	}
}

// Top returns the n slowest stitched messages (all of them when n <= 0).
func (r *Report) Top(n int) []*Message {
	if n <= 0 || n > len(r.Messages) {
		n = len(r.Messages)
	}
	return r.Messages[:n]
}

// Write renders the stitched report as the operator-facing text summary.
func (r *Report) Write(w io.Writer, topN int) {
	reachable, reports := 0, 0
	for _, nt := range r.Nodes {
		if nt.Err == "" {
			reachable++
			reports += len(nt.Reports)
		} else {
			fmt.Fprintf(w, "node %s unreachable: %s\n", nt.Addr, nt.Err)
		}
	}
	fmt.Fprintf(w, "stitched %d messages from %d/%d nodes (%d group reports)\n",
		len(r.Messages), reachable, len(r.Nodes), reports)
	for _, m := range r.Top(topN) {
		fmt.Fprintf(w, "\n%s group %d origin member %d  slowness %.6fs\n",
			m.MID, m.Group, m.Origin, m.SlownessSeconds)
		for _, o := range m.Observations {
			s := o.Span
			line := fmt.Sprintf("  node %d: %s", o.Node, s.Outcome)
			if skew, ok := m.DeliverSkewNs[o.Node]; ok {
				line += fmt.Sprintf("  broadcast→deliver %+.6fs", float64(skew)/1e9)
			}
			if s.StabilityLagSeconds > 0 {
				line += fmt.Sprintf("  stab-lag %.6fs", s.StabilityLagSeconds)
			}
			fmt.Fprintln(w, line)
		}
		for _, b := range m.Blocked {
			where := "never seen on any collected node"
			if b.SeenAnywhere {
				where = "in flight elsewhere"
			}
			fmt.Fprintf(w, "  BLOCKED at nodes %v on %s — member %d's missing message (%s)\n",
				m.StuckAt, b.DepMID, b.DepMember, where)
		}
	}
}

// Package probe is the shared HTTP-collection substrate of every tool
// that sweeps a cluster's nodehttp endpoints — urcgc-inspect (/status,
// /metrics, /healthz, /timeseries), urcgc-trace (/trace) and
// urcgc-replay (/capture). Each of them grew the same three fragments:
// normalizing "host:port" into a base URL, one bounded GET, and an
// order-preserving parallel fan-out over the node list. This package
// holds the one copy; the diagnosis logic stays in the callers.
package probe

import (
	"context"
	"io"
	"net/http"
	"strings"
)

// MaxBody bounds one response body read (16MB) — larger than any
// endpoint legitimately answers, small enough that a misconfigured
// address pointing at a log stream cannot exhaust memory.
const MaxBody = 16 << 20

// NormalizeAddr turns "host:port" into a base URL without a trailing
// slash; addresses that already carry a scheme pass through.
func NormalizeAddr(a string) string {
	a = strings.TrimSpace(a)
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	return strings.TrimRight(a, "/")
}

// Fetch performs one GET bounded by ctx, returning the body (limited to
// MaxBody) and the HTTP status code. A nil client uses the default.
func Fetch(ctx context.Context, client *http.Client, url string) ([]byte, int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxBody))
	return body, resp.StatusCode, err
}

// Fanout probes every address concurrently and returns the results in
// input order: out[i] = fn(i, addrs[i]). fn must confine itself to its
// own slot; partial failure is whatever fn encodes into its result (the
// callers all carry an Err field), never a panic across slots.
func Fanout[T any](addrs []string, fn func(i int, addr string) T) []T {
	out := make([]T, len(addrs))
	done := make(chan struct{})
	for i, a := range addrs {
		go func(i int, addr string) {
			out[i] = fn(i, addr)
			done <- struct{}{}
		}(i, a)
	}
	for range addrs {
		<-done
	}
	return out
}

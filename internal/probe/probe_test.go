package probe

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNormalizeAddr(t *testing.T) {
	cases := map[string]string{
		" 127.0.0.1:9100 ":        "http://127.0.0.1:9100",
		"http://node:9100/":       "http://node:9100",
		"https://node:9100/path/": "https://node:9100/path",
	}
	for in, want := range cases {
		if got := NormalizeAddr(in); got != want {
			t.Errorf("NormalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestFetchBounded pins that Fetch truncates an over-budget body instead
// of reading it all: a misconfigured address must not exhaust memory.
func TestFetchBounded(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		chunk := strings.Repeat("x", 1<<20)
		for i := 0; i < 20; i++ {
			if _, err := fmt.Fprint(w, chunk); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	body, code, err := Fetch(context.Background(), srv.Client(), srv.URL)
	if err != nil || code != 200 {
		t.Fatalf("fetch: code %d err %v", code, err)
	}
	if len(body) != MaxBody {
		t.Fatalf("body = %d bytes, want truncation at %d", len(body), MaxBody)
	}
}

// TestFanoutOrder pins that results land in input order regardless of
// completion order, and that per-slot failures stay in their slot.
func TestFanoutOrder(t *testing.T) {
	addrs := []string{"a", "b", "c", "d"}
	got := Fanout(addrs, func(i int, addr string) string {
		return fmt.Sprintf("%d:%s", i, addr)
	})
	for i, addr := range addrs {
		if want := fmt.Sprintf("%d:%s", i, addr); got[i] != want {
			t.Fatalf("slot %d = %q, want %q", i, got[i], want)
		}
	}
}

// Package stack exposes the protocol architecture of Section 5: the urcgc
// service, accessed through user urcgc Service Access Points (SAPs), is
// fully described by the primitives urcgc-data.Rq, urcgc-data.Conf and
// urcgc-data.Ind. The user entity that issues a Request blocks until the
// local entity has processed the message (the Confirm); Indications are
// generated asynchronously as remote messages are delivered and processed.
//
// Underneath, the urcgc layer divides into the Group Control sublayer (the
// urcgc entity of internal/core, running the agreement protocol) and the
// Group Message Transfer sublayer (message processing, history storage and
// recovery — also in internal/core, with internal/transport supplying the
// t-SAP service when h > 1). This package is the thin, paper-faithful
// facade over those entities as embodied by a live runtime node.
package stack

import (
	"context"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
	"urcgc/internal/rt"
)

// DataInd is the urcgc-data.Ind primitive: a message has been delivered and
// processed at this SAP's member, in causal order.
type DataInd struct {
	// Msg is the processed message: origin, causal labels, payload.
	Msg causal.Message
}

// DataConf is the urcgc-data.Conf primitive: the local entity has processed
// the requested message (which also means it was broadcast to the group).
type DataConf struct {
	// MID is the identifier the service assigned to the message.
	MID mid.MID
}

// SAP is one user's urcgc Service Access Point. In a peer group every user
// entity acts as both the client generating messages and the server
// processing them, so a single SAP carries both directions.
type SAP struct {
	node *rt.Node
	ind  chan DataInd
	stop chan struct{}
}

// Open attaches a SAP to a live group member and starts translating its
// indications. Close releases it.
func Open(node *rt.Node) *SAP {
	s := &SAP{
		node: node,
		ind:  make(chan DataInd, 1024),
		stop: make(chan struct{}),
	}
	go s.pump()
	return s
}

func (s *SAP) pump() {
	for {
		select {
		case <-s.stop:
			return
		case raw := <-s.node.Indications():
			select {
			case s.ind <- DataInd{Msg: raw.Msg}:
			case <-s.stop:
				return
			}
		}
	}
}

// Close detaches the SAP. The member keeps running; only the indication
// translation stops.
func (s *SAP) Close() { close(s.stop) }

// Member returns the group member this SAP is attached to.
func (s *SAP) Member() mid.ProcID { return s.node.ID() }

// DataRq is the urcgc-data.Rq primitive: submit a message with the given
// explicit causal dependencies (messages this user has seen via DataInd, at
// most one per other sequence) and block until the Confirm. In the absence
// of failures the service processes one message a round — the maximum
// attainable service rate; failures slow the rate because messages wait for
// recovery from history of those they causally depend on.
func (s *SAP) DataRq(ctx context.Context, payload []byte, deps mid.DepList) (DataConf, error) {
	id, err := s.node.Send(ctx, payload, deps)
	if err != nil {
		return DataConf{}, err
	}
	return DataConf{MID: id}, nil
}

// DataRqCausal is DataRq with the conservative labelling: the message
// depends on the latest message processed from every other live sequence.
func (s *SAP) DataRqCausal(ctx context.Context, payload []byte) (DataConf, error) {
	id, err := s.node.SendCausal(ctx, payload)
	if err != nil {
		return DataConf{}, err
	}
	return DataConf{MID: id}, nil
}

// DataInd returns the indication stream.
func (s *SAP) DataInd() <-chan DataInd { return s.ind }

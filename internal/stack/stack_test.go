package stack

import (
	"context"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/rt"
)

func newGroup(t *testing.T, n int) (*rt.Cluster, []*SAP) {
	t.Helper()
	c, err := rt.NewCluster(rt.Config{
		Config:        core.Config{N: n, K: 3, R: 8, SelfExclusion: true},
		RoundDuration: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	saps := make([]*SAP, n)
	for i := 0; i < n; i++ {
		saps[i] = Open(c.Node(mid.ProcID(i)))
		t.Cleanup(saps[i].Close)
	}
	return c, saps
}

func TestRqConfInd(t *testing.T) {
	_, saps := newGroup(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	conf, err := saps[0].DataRq(ctx, []byte("hello"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if conf.MID != (mid.MID{Proc: 0, Seq: 1}) {
		t.Errorf("MID = %v", conf.MID)
	}
	// Every other SAP gets the indication.
	for i := 1; i < 3; i++ {
		select {
		case ind := <-saps[i].DataInd():
			if ind.Msg.ID != conf.MID || string(ind.Msg.Payload) != "hello" {
				t.Errorf("SAP %d got %v %q", i, ind.Msg.ID, ind.Msg.Payload)
			}
		case <-ctx.Done():
			t.Fatalf("SAP %d never indicated", i)
		}
	}
}

func TestCausalChainAcrossSAPs(t *testing.T) {
	_, saps := newGroup(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	a, err := saps[0].DataRq(ctx, []byte("question"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// SAP 1 waits for the question, then answers with an explicit causal
	// dependency on it — the paper's application-specified causality.
	select {
	case ind := <-saps[1].DataInd():
		if ind.Msg.ID != a.MID {
			t.Fatalf("unexpected indication %v", ind.Msg.ID)
		}
	case <-ctx.Done():
		t.Fatal("question never arrived")
	}
	b, err := saps[1].DataRq(ctx, []byte("answer"), mid.DepList{a.MID})
	if err != nil {
		t.Fatal(err)
	}
	// SAP 2 must observe question before answer.
	var order []mid.MID
	for len(order) < 2 {
		select {
		case ind := <-saps[2].DataInd():
			order = append(order, ind.Msg.ID)
		case <-ctx.Done():
			t.Fatal("SAP 2 starved")
		}
	}
	if order[0] != a.MID || order[1] != b.MID {
		t.Errorf("order = %v, want [%v %v]", order, a.MID, b.MID)
	}
}

func TestDataRqCausal(t *testing.T) {
	_, saps := newGroup(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := saps[0].DataRq(ctx, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	// Wait for SAP 1 to see it so the causal labelling has something to
	// point at.
	select {
	case <-saps[1].DataInd():
	case <-ctx.Done():
		t.Fatal("starved")
	}
	conf, err := saps[1].DataRqCausal(ctx, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if conf.MID != (mid.MID{Proc: 1, Seq: 1}) {
		t.Errorf("MID = %v", conf.MID)
	}
}

func TestMember(t *testing.T) {
	_, saps := newGroup(t, 2)
	if saps[1].Member() != 1 {
		t.Errorf("Member = %d", saps[1].Member())
	}
}

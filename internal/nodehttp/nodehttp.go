// Package nodehttp assembles the observability HTTP surface of one live
// group member. cmd/urcgc-node, the inspect smoke tests and the chaos
// harness all serve the same mux, so urcgc-inspect talks to one endpoint
// shape everywhere:
//
//	/metrics     Prometheus text exposition of the registry
//	/status      protocol state; text by default, ?format=json for JSON
//	/healthz     health verdict (200 healthy / 503 + reasons)
//	/timeseries  the flight recorder's gauge window as JSON
//	/events      recent trace events
//	/trace       message lifecycle spans (when tracing is enabled)
//	/capture     flight-recorder frame dump (binary; ?decode=1 for JSON)
//	/debug/*     expvar + pprof (opt-in)
package nodehttp

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"urcgc/internal/capture"
	"urcgc/internal/health"
	"urcgc/internal/lifecycle"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
)

// Options configure the mux. Registry is required; every nil optional
// field simply leaves its endpoint unmounted (404).
type Options struct {
	// Registry backs /metrics and /events.
	Registry *obs.Registry
	// Flight, if set, backs /timeseries.
	Flight *obs.Flight
	// Health, if set, backs /healthz.
	Health *health.Evaluator
	// MultiHealth, if set, backs /healthz with the per-group aggregate
	// verdict of a multi-group member (503 lists {group, rule, reason}
	// triples). Takes precedence over Health.
	MultiHealth *health.MultiEvaluator
	// Status, if set, backs /status. It must be safe to call from any
	// goroutine (rt.Node.Status and rt.UDPNode.Status are).
	Status func(ctx context.Context) (rt.Status, error)
	// Lifecycle, if set, backs /trace; returning nil reports tracing
	// disabled.
	Lifecycle func() *lifecycle.Tracer
	// LifecycleGroups, if set, backs /trace for a multi-group member: the
	// slice is indexed by group id. `?group=N` serves that group's Report;
	// without the parameter every group's report is wrapped in one
	// MultiReport. Takes precedence over Lifecycle.
	LifecycleGroups func() []*lifecycle.Tracer
	// Capture, if set, backs /capture with the member's frame flight
	// recorder: the versioned binary dump by default (what urcgc-replay
	// ingests), or decoded JSON with ?decode=1.
	Capture *capture.Ring
	// Pprof mounts /debug/vars and /debug/pprof.
	Pprof bool
	// StatusTimeout bounds one /status sample; 0 means 2s.
	StatusTimeout time.Duration
}

// Mux builds the endpoint surface.
func Mux(o Options) *http.ServeMux {
	mux := http.NewServeMux()
	if o.Registry != nil {
		mux.Handle("/metrics", o.Registry.Handler())
		mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			evs := o.Registry.Events().Events()
			fmt.Fprintf(w, "events total=%d dropped=%d shown=%d\n",
				o.Registry.Events().Total(), o.Registry.Events().Dropped(), len(evs))
			for _, e := range evs {
				fmt.Fprintf(w, "%s %s\n", e.At.Format("15:04:05.000"), e.Msg)
			}
		})
	}
	if o.Flight != nil {
		mux.Handle("/timeseries", o.Flight.Handler())
	}
	if o.MultiHealth != nil {
		mux.Handle("/healthz", o.MultiHealth.Handler())
	} else if o.Health != nil {
		mux.Handle("/healthz", o.Health.Handler())
	}
	if o.Status != nil {
		timeout := o.StatusTimeout
		if timeout <= 0 {
			timeout = 2 * time.Second
		}
		mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			st, err := o.Status(ctx)
			if err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			if r.URL.Query().Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json")
				_ = json.NewEncoder(w).Encode(st)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteStatusText(w, st)
		})
	}
	if o.LifecycleGroups != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			trs := o.LifecycleGroups()
			if len(trs) == 0 {
				http.Error(w, "lifecycle tracing disabled (-trace-slow 0)", http.StatusNotFound)
				return
			}
			slowN := queryInt(r, "slow", 10)
			recentN := queryInt(r, "recent", 25)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if gq := r.URL.Query().Get("group"); gq != "" {
				g, err := strconv.Atoi(gq)
				if err != nil || g < 0 || g >= len(trs) {
					http.Error(w, fmt.Sprintf("group %q outside [0,%d)", gq, len(trs)), http.StatusBadRequest)
					return
				}
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				_ = enc.Encode(trs[g].Report(slowN, recentN))
				return
			}
			multi := lifecycle.MultiReport{}
			for _, tr := range trs {
				r := tr.Report(slowN, recentN)
				multi.Node = r.Node
				multi.Groups = append(multi.Groups, r)
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = enc.Encode(multi)
		})
	} else if o.Lifecycle != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			tr := o.Lifecycle()
			if tr == nil {
				http.Error(w, "lifecycle tracing disabled (-trace-slow 0)", http.StatusNotFound)
				return
			}
			slowN := queryInt(r, "slow", 10)
			recentN := queryInt(r, "recent", 25)
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(tr.Report(slowN, recentN))
		})
	}
	if o.Capture != nil {
		mux.HandleFunc("/capture", func(w http.ResponseWriter, r *http.Request) {
			dump := o.Capture.Snapshot()
			if r.URL.Query().Get("decode") == "1" {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(dump.View())
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_ = dump.Encode(w)
		})
	}
	if o.Pprof {
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// WriteStatusText renders the human-readable /status body.
func WriteStatusText(w http.ResponseWriter, st rt.Status) {
	fmt.Fprintf(w, "id         %d of %d\n", st.ID, st.N)
	fmt.Fprintf(w, "running    %v\n", st.Running)
	if st.Joining {
		fmt.Fprintf(w, "joining    true (state transfer in progress)\n")
	}
	fmt.Fprintf(w, "subrun     %d (coordinator %d)\n", st.Subrun, st.Coordinator)
	fmt.Fprintf(w, "processed  %v\n", st.Processed)
	fmt.Fprintf(w, "stable_to  %v\n", st.StableTo)
	fmt.Fprintf(w, "alive      %v\n", st.Alive)
	fmt.Fprintf(w, "history    %d by-sender %v\n", st.HistoryLen, st.HistoryBySender)
	fmt.Fprintf(w, "waiting    %d\n", st.WaitingLen)
	fmt.Fprintf(w, "pending    %d\n", st.Pending)
	fmt.Fprintf(w, "stats      %+v\n", st.Stats)
	if len(st.GroupProcessed) > 0 {
		fmt.Fprintf(w, "groups     %d processed %v\n", len(st.GroupProcessed), st.GroupProcessed)
	}
	for _, g := range st.Groups {
		join := ""
		if g.Joining {
			join = " joining"
		}
		fmt.Fprintf(w, "group %-4d subrun %d processed %d stable %d waiting %d history %d alive %v%s\n",
			g.Group, g.Subrun, g.ProcessedSum, g.StableSum, g.WaitingLen, g.HistoryLen, g.Alive, join)
	}
}

// Serve binds addr and serves the handler in the background, returning
// the listener (for its bound address and for Close).
func Serve(addr string, h http.Handler) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, h) }()
	return ln, nil
}

// queryInt reads a positive integer query parameter with a default.
func queryInt(r *http.Request, key string, def int) int {
	v, err := strconv.Atoi(r.URL.Query().Get(key))
	if err != nil || v < 0 {
		return def
	}
	return v
}

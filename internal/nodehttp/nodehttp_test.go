package nodehttp

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"urcgc/internal/capture"
	"urcgc/internal/causal"
	"urcgc/internal/health"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
	"urcgc/internal/wire"
)

// multiFixture assembles the observability state of a member hosting
// `groups` groups, with the same series shapes topics.MultiNode registers.
type multiFixture struct {
	reg      *obs.Registry
	flight   *obs.Flight
	decision []*obs.Gauge
	tracers  []*lifecycle.Tracer
}

func newMultiFixture(t *testing.T, groups int) *multiFixture {
	t.Helper()
	f := &multiFixture{reg: obs.New()}
	f.flight = obs.NewFlight(f.reg, obs.FlightOptions{Cap: 64})
	for g := 0; g < groups; g++ {
		l := func(name string) string {
			return obs.Labeled(name, "node", "0", "group", strconv.Itoa(g))
		}
		f.decision = append(f.decision, f.reg.Gauge(l("core_decision_subrun")))
		f.reg.Gauge(l("core_history_len"))
		f.reg.Gauge(l("core_waiting_len"))
		f.reg.Counter(l("rt_processed_total"))
		f.reg.Gauge(l("core_stable_sum"))
		f.tracers = append(f.tracers, lifecycle.NewGroup(0, 3, uint32(g),
			lifecycle.Options{SlowThreshold: time.Hour}, f.reg))
	}
	return f
}

func (f *multiFixture) mux(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Mux(Options{
		Registry:        f.reg,
		Flight:          f.flight,
		MultiHealth:     health.NewMultiEvaluator(f.flight, "0", len(f.decision), health.Thresholds{TokenStallSamples: 4}),
		LifecycleGroups: func() []*lifecycle.Tracer { return f.tracers },
		Status: func(context.Context) (rt.Status, error) {
			st := rt.Status{ID: 0, N: 3, Running: true}
			for g := range f.decision {
				st.Groups = append(st.Groups, rt.GroupStatus{Group: uint32(g), Running: true})
			}
			return st, nil
		},
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestHealthzPerGroupReasons drives the aggregate /healthz of a 3-group
// member: healthy while every group's token circulates, then 503 naming
// exactly the group whose token froze.
func TestHealthzPerGroupReasons(t *testing.T) {
	f := newMultiFixture(t, 3)
	srv := f.mux(t)

	for i := 0; i < 8; i++ {
		for _, d := range f.decision {
			d.Add(1)
		}
		f.flight.Sample()
	}
	res, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("healthy member /healthz = %d", res.StatusCode)
	}

	for i := 0; i < 4; i++ {
		f.decision[0].Add(1)
		f.decision[2].Add(1) // group 1 frozen
		f.flight.Sample()
	}
	res, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 503 {
		t.Fatalf("degraded member /healthz = %d", res.StatusCode)
	}
	var st health.MultiStatus
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Reasons) != 1 || st.Reasons[0].Group != 1 || st.Reasons[0].Rule != "token-stall" {
		t.Fatalf("reasons = %+v, want one token-stall on group 1", st.Reasons)
	}
	if len(st.Groups) != 3 || st.Groups[1].Healthy || !st.Groups[0].Healthy {
		t.Fatalf("per-group verdicts = %+v", st.Groups)
	}
}

// TestTraceGroupFilter pins /trace on a multi-group member: ?group=N
// serves that group's Report, no parameter serves the MultiReport of
// every group, and an unhosted group is a 400.
func TestTraceGroupFilter(t *testing.T) {
	f := newMultiFixture(t, 2)
	srv := f.mux(t)
	f.tracers[0].Generated(mid.MID{Proc: 0, Seq: 1})
	f.tracers[1].Generated(mid.MID{Proc: 0, Seq: 1}) // same MID, different group
	f.tracers[1].Generated(mid.MID{Proc: 0, Seq: 2})

	res, err := srv.Client().Get(srv.URL + "/trace?group=1")
	if err != nil {
		t.Fatal(err)
	}
	var rep lifecycle.Report
	err = json.NewDecoder(res.Body).Decode(&rep)
	res.Body.Close()
	if err != nil || res.StatusCode != 200 {
		t.Fatalf("?group=1: code %d err %v", res.StatusCode, err)
	}
	if rep.Group != 1 || rep.Counts.Started != 2 {
		t.Fatalf("?group=1 report = group %d, %d spans", rep.Group, rep.Counts.Started)
	}

	res, err = srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var multi lifecycle.MultiReport
	err = json.NewDecoder(res.Body).Decode(&multi)
	res.Body.Close()
	if err != nil || len(multi.Groups) != 2 {
		t.Fatalf("unfiltered /trace: err %v, %d groups", err, len(multi.Groups))
	}
	if multi.Groups[0].Group != 0 || multi.Groups[1].Group != 1 {
		t.Fatalf("group tags = %d,%d", multi.Groups[0].Group, multi.Groups[1].Group)
	}

	res, err = srv.Client().Get(srv.URL + "/trace?group=7")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 400 {
		t.Fatalf("unhosted group code = %d, want 400", res.StatusCode)
	}
}

// TestTimeseriesLabeledWindow pins that the group-labeled series —
// gauges and histogram projections alike — appear in the /timeseries
// window with one value per sample.
func TestTimeseriesLabeledWindow(t *testing.T) {
	f := newMultiFixture(t, 2)
	srv := f.mux(t)
	f.reg.Histogram(obs.Labeled("topics_submit_to_stable_seconds", "node", "0", "group", "1"), obs.DurationBuckets).Observe(0.002)
	for i := 1; i <= 3; i++ {
		f.decision[1].Set(int64(i))
		f.flight.Sample()
	}

	res, err := srv.Client().Get(srv.URL + "/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap obs.FlightSnapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Series[`core_decision_subrun{node="0",group="1"}`]; len(got) != 3 || got[2] != 3 {
		t.Fatalf("labeled gauge window = %v", got)
	}
	if got := snap.Series[`topics_submit_to_stable_seconds_count{node="0",group="1"}`]; len(got) != 3 || got[2] != 1 {
		t.Fatalf("histogram projection window = %v", got)
	}
}

// TestStatusTextRendersGroups checks the human /status body lists one
// line per hosted group.
func TestStatusTextRendersGroups(t *testing.T) {
	f := newMultiFixture(t, 2)
	srv := f.mux(t)
	res, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, "group 0") || !strings.Contains(body, "group 1") {
		t.Fatalf("status text missing group lines:\n%s", body)
	}
}

// TestCaptureDisabled404 checks a mux built without a capture ring leaves
// /capture unmounted.
func TestCaptureDisabled404(t *testing.T) {
	srv := httptest.NewServer(Mux(Options{Registry: obs.New()}))
	t.Cleanup(srv.Close)
	res, err := srv.Client().Get(srv.URL + "/capture")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 404 {
		t.Fatalf("/capture with capture disabled = %d, want 404", res.StatusCode)
	}
}

// TestCaptureDumpRoundTrip records frames into a ring, fetches the binary
// dump through the endpoint, and decodes it back: the artifact a replayer
// downloads must carry exactly what the runtime recorded. The ?decode=1
// variant must render the same records as JSON with decoded frame bodies.
func TestCaptureDumpRoundTrip(t *testing.T) {
	ring := capture.New(capture.Options{Node: 2, N: 5, K: 2, R: 2})
	frame, _ := wire.MarshalAppend(nil, &wire.Data{Msg: causal.Message{
		ID:      mid.MID{Proc: 1, Seq: 7},
		Payload: []byte("evidence"),
	}})
	ring.Record(capture.DirIngress, 0, 1, capture.Delivered, 0, frame)
	ring.Record(capture.DirEgress, 0, mid.None, capture.Sent, 0, frame)

	srv := httptest.NewServer(Mux(Options{Registry: obs.New(), Capture: ring}))
	t.Cleanup(srv.Close)

	res, err := srv.Client().Get(srv.URL + "/capture")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("binary dump content type = %q", ct)
	}
	dump, err := capture.Decode(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Node != 2 || dump.N != 5 || dump.K != 2 || dump.R != 2 {
		t.Fatalf("dump header = node %d shape %d/%d/%d", dump.Node, dump.N, dump.K, dump.R)
	}
	if len(dump.Records) != 2 {
		t.Fatalf("dump retained %d records, want 2", len(dump.Records))
	}
	in := dump.Records[0]
	if in.Dir != capture.DirIngress || in.Verdict != capture.Delivered || in.Peer != 1 {
		t.Fatalf("ingress record = %+v", in)
	}
	info := capture.Summarize(in.Frame)
	if info.Kind != "DATA" || len(info.MIDs) != 1 || info.MIDs[0] != "p1#7" {
		t.Fatalf("decoded frame = %+v", info)
	}

	res2, err := srv.Client().Get(srv.URL + "/capture?decode=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if ct := res2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("decoded dump content type = %q", ct)
	}
	var view struct {
		Node    int32 `json:"node"`
		Records []struct {
			Dir     string `json:"dir"`
			Verdict string `json:"verdict"`
			Frame   struct {
				Kind string   `json:"kind"`
				MIDs []string `json:"mids"`
			} `json:"frame"`
		} `json:"records"`
	}
	if err := json.NewDecoder(res2.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Node != 2 || len(view.Records) != 2 {
		t.Fatalf("decoded view = node %d, %d records", view.Node, len(view.Records))
	}
	if r := view.Records[1]; r.Dir != "out" || r.Verdict != "sent" || r.Frame.Kind != "DATA" {
		t.Fatalf("decoded egress record = %+v", r)
	}
}

// TestCaptureConcurrentDump hammers the ring with writers while
// repeatedly downloading and decoding /capture — the snapshot under the
// dump must stay internally consistent (meaningful under -race).
func TestCaptureConcurrentDump(t *testing.T) {
	ring := capture.New(capture.Options{Node: 0, N: 3, MaxFrames: 128})
	srv := httptest.NewServer(Mux(Options{Registry: obs.New(), Capture: ring}))
	t.Cleanup(srv.Close)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	frame, _ := wire.MarshalAppend(nil, &wire.Data{Msg: causal.Message{ID: mid.MID{Proc: 1, Seq: 1}}})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					ring.Record(capture.DirIngress, 0, 1, capture.Delivered, 0, frame)
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		res, err := srv.Client().Get(srv.URL + "/capture")
		if err != nil {
			t.Fatal(err)
		}
		dump, err := capture.Decode(res.Body)
		res.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(dump.Records); j++ {
			if dump.Records[j].Seq != dump.Records[j-1].Seq+1 {
				t.Fatalf("dump seqs not contiguous at %d: %d then %d",
					j, dump.Records[j-1].Seq, dump.Records[j].Seq)
			}
		}
	}
	close(stop)
	wg.Wait()
}

package fault

import (
	"testing"

	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

func TestNone(t *testing.T) {
	var in None
	if in.Crashed(0, 100) || in.DropSend(0, 1, 0) || in.DropRecv(0, 1, 0) {
		t.Error("None must never fail anything")
	}
}

func TestCrash(t *testing.T) {
	c := Crash{Proc: 2, At: 100}
	if c.Crashed(2, 99) {
		t.Error("not crashed before At")
	}
	if !c.Crashed(2, 100) || !c.Crashed(2, 5000) {
		t.Error("crashed from At onwards")
	}
	if c.Crashed(1, 5000) {
		t.Error("other processes unaffected")
	}
	if !c.DropSend(2, 0, 100) {
		t.Error("crashed sender emits nothing")
	}
	if c.DropSend(0, 2, 100) {
		t.Error("sends to a crashed process still leave the sender")
	}
	if !c.DropRecv(0, 2, 100) {
		t.Error("crashed receiver absorbs nothing")
	}
}

func TestEveryNthSend(t *testing.T) {
	e := &EveryNth{N: 3, Side: AtSend}
	var drops []int
	for i := 1; i <= 9; i++ {
		if e.DropSend(0, 1, 0) {
			drops = append(drops, i)
		}
	}
	if len(drops) != 3 || drops[0] != 3 || drops[1] != 6 || drops[2] != 9 {
		t.Errorf("drops = %v", drops)
	}
	if e.DropRecv(0, 1, 0) {
		t.Error("send-side injector must not drop at receive")
	}
}

func TestEveryNthRecv(t *testing.T) {
	e := &EveryNth{N: 2, Side: AtRecv}
	d1, d2 := e.DropRecv(0, 1, 0), e.DropRecv(0, 1, 0)
	if d1 || !d2 {
		t.Errorf("drops = %v %v, want false true", d1, d2)
	}
	if e.DropSend(0, 1, 0) {
		t.Error("recv-side injector must not drop at send")
	}
}

func TestEveryNthDisabled(t *testing.T) {
	e := &EveryNth{N: 0, Side: AtSend}
	for i := 0; i < 10; i++ {
		if e.DropSend(0, 1, 0) {
			t.Fatal("N=0 must never drop")
		}
	}
}

func TestRateDeterministicPerSeed(t *testing.T) {
	run := func() []bool {
		r := NewRate(0.5, AtSend, 99)
		out := make([]bool, 100)
		for i := range out {
			out[i] = r.DropSend(0, 1, 0)
		}
		return out
	}
	a, b := run(), run()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same drops")
		}
		if a[i] {
			drops++
		}
	}
	if drops < 30 || drops > 70 {
		t.Errorf("0.5 rate produced %d/100 drops", drops)
	}
	if r := NewRate(0.5, AtSend, 1); r.DropRecv(0, 1, 0) {
		t.Error("send-side rate must not drop at receive")
	}
}

func TestDuringWindowsOmissionsNotCrashes(t *testing.T) {
	inner := Multi{
		&EveryNth{N: 1, Side: AtSend}, // drops everything
		Crash{Proc: 1, At: 50},
	}
	d := During{From: 100, To: 200, Inner: inner}
	if d.DropSend(0, 1, 99) {
		t.Error("before window")
	}
	if !d.DropSend(0, 1, 150) {
		t.Error("inside window")
	}
	if d.DropSend(0, 1, 200) && d.Inner.Crashed(0, 200) {
		t.Error("at window end")
	}
	// DropSend at 200 still true because the crash makes proc 1... no: src 0
	// is not crashed; EveryNth is windowed out. Verify:
	if d.DropSend(2, 3, 200) {
		t.Error("omission outside window must not fire")
	}
	if !d.Crashed(1, 300) {
		t.Error("crash must not be windowed")
	}
}

func TestOnlyProc(t *testing.T) {
	o := OnlyProc{Proc: 1, Inner: &EveryNth{N: 1, Side: AtSend}}
	if o.DropSend(0, 1, 0) {
		t.Error("other senders unaffected")
	}
	if !o.DropSend(1, 0, 0) {
		t.Error("target sender drops")
	}
	o2 := OnlyProc{Proc: 1, Inner: &EveryNth{N: 1, Side: AtRecv}}
	if o2.DropRecv(0, 2, 0) {
		t.Error("other receivers unaffected")
	}
	if !o2.DropRecv(0, 1, 0) {
		t.Error("target receiver drops")
	}
}

func TestMultiComposition(t *testing.T) {
	m := Multi{
		Crash{Proc: 0, At: 10},
		&EveryNth{N: 2, Side: AtSend},
	}
	if !m.Crashed(0, 10) || m.Crashed(1, 10) {
		t.Error("Crashed composition wrong")
	}
	// First consult: counter 1, no drop. Second: counter 2, drop.
	if m.DropSend(1, 2, 0) {
		t.Error("first packet survives")
	}
	if !m.DropSend(1, 2, 0) {
		t.Error("second packet dropped by EveryNth")
	}
	// Crashed sender drops regardless of counter.
	if !m.DropSend(0, 1, 10) {
		t.Error("crashed sender must drop")
	}
}

func TestCrashesBuilder(t *testing.T) {
	m := Crashes(map[mid.ProcID]sim.Time{3: 100, 1: 50})
	if len(m) != 2 {
		t.Fatalf("len = %d", len(m))
	}
	if !m.Crashed(1, 50) || !m.Crashed(3, 100) || m.Crashed(2, 1000) {
		t.Error("schedule not honoured")
	}
}

func TestPartition(t *testing.T) {
	p := Partition{From: 100, To: 200, SideA: map[mid.ProcID]bool{0: true, 1: true}}
	if p.DropSend(0, 1, 150) {
		t.Error("same side must flow")
	}
	if !p.DropSend(0, 2, 150) || !p.DropSend(2, 1, 150) {
		t.Error("cross-cut packets must drop in both directions")
	}
	if p.DropSend(0, 2, 99) || p.DropSend(0, 2, 200) {
		t.Error("outside the window nothing drops")
	}
	if p.Crashed(0, 150) || p.DropRecv(0, 2, 150) {
		t.Error("partition neither crashes nor drops at receive")
	}
}

// TestCrashesHighProcIDAndOrder is the regression test for the builder's
// old linear probe over ProcIDs 0..65535, which silently dropped any
// schedule entry at or above 1<<16: every entry must survive, in ascending
// ProcID order for rng reproducibility.
func TestCrashesHighProcIDAndOrder(t *testing.T) {
	m := Crashes(map[mid.ProcID]sim.Time{
		1 << 20: 100, // above the old probe ceiling
		7:       50,
		1 << 16: 75, // exactly at the old ceiling
	})
	if len(m) != 3 {
		t.Fatalf("len = %d, want 3 (high ProcIDs dropped)", len(m))
	}
	want := []mid.ProcID{7, 1 << 16, 1 << 20}
	for i, in := range m {
		c := in.(Crash)
		if c.Proc != want[i] {
			t.Errorf("member %d = p%d, want p%d", i, c.Proc, want[i])
		}
	}
	if !m.Crashed(1<<20, 100) || !m.Crashed(1<<16, 75) {
		t.Error("high ProcID crashes must be honoured")
	}
}

// TestDuringScopesInnerCounter pins the combinator scoping contract the
// experiment schedules depend on: During does not consult its inner
// injector outside the window, so During{EveryNth{N}} drops every Nth
// packet of the window — out-of-window traffic must not advance the
// counter.
func TestDuringScopesInnerCounter(t *testing.T) {
	d := During{From: 100, To: 200, Inner: &EveryNth{N: 3, Side: AtSend}}
	// Heavy out-of-window traffic: must not touch the inner counter.
	for i := 0; i < 7; i++ {
		if d.DropSend(0, 1, sim.Time(i)) {
			t.Fatal("no omissions before the window")
		}
	}
	var drops []int
	for i := 1; i <= 6; i++ {
		if d.DropSend(0, 1, 150) {
			drops = append(drops, i)
		}
	}
	if len(drops) != 2 || drops[0] != 3 || drops[1] != 6 {
		t.Errorf("in-window drops = %v, want [3 6] (window-scoped counting)", drops)
	}
	if d.DropSend(0, 1, 250) {
		t.Error("no omissions after the window")
	}
}

// TestOnlyProcScopesInnerCounter pins the same contract for the process
// filter: other processes' packets never advance the inner counter.
func TestOnlyProcScopesInnerCounter(t *testing.T) {
	o := OnlyProc{Proc: 1, Inner: &EveryNth{N: 2, Side: AtSend}}
	if o.DropSend(0, 2, 0) || o.DropSend(0, 2, 1) || o.DropSend(2, 0, 2) {
		t.Fatal("other senders' packets must pass unconsulted")
	}
	if o.DropSend(1, 2, 3) {
		t.Fatal("proc 1's first packet must pass")
	}
	if !o.DropSend(1, 2, 4) {
		t.Error("proc 1's second packet must drop: the filter scopes the counter")
	}
}

// TestMultiConsultsEveryMember pins Multi's opposite contract: every
// member sees every packet, so sibling counters advance in lockstep
// however the composition is ordered.
func TestMultiConsultsEveryMember(t *testing.T) {
	a := &EveryNth{N: 2, Side: AtSend}
	b := &EveryNth{N: 2, Side: AtSend}
	m := Multi{a, b}
	if m.DropSend(0, 1, 0) {
		t.Fatal("first packet must pass both counters")
	}
	// Both counters hit 2 together: a's verdict must not short-circuit b's.
	if !m.DropSend(0, 1, 1) {
		t.Fatal("second packet must drop")
	}
	if m.DropSend(0, 1, 2) {
		t.Error("third packet must pass: both counters at 3")
	}
	if !m.DropSend(0, 1, 3) {
		t.Error("fourth packet must drop: counters still in lockstep")
	}
}

// Package fault implements the general omission failure model of Section 3
// of the paper: a process fails either by crashing (fail stop) or by
// omitting to send or receive a subset of the messages the protocol
// requires. Subnetwork packet loss is modelled as an omission attributed to
// the link, which the protocol cannot distinguish from process omissions —
// exactly the property urcgc exploits to stay transport-agnostic.
//
// Injectors are deterministic given their construction parameters (and
// seed, where randomized), so experiment runs are reproducible.
package fault

import (
	"math/rand"
	"sort"

	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

// Injector decides which failures occur. The simulated network consults it
// on every packet, and node drivers consult Crashed to halt fail-stopped
// processes.
type Injector interface {
	// Crashed reports whether process p has crashed by time now.
	Crashed(p mid.ProcID, now sim.Time) bool
	// DropSend reports whether a send omission (at src, or in the subnet)
	// destroys the packet src->dst submitted at time now.
	DropSend(src, dst mid.ProcID, now sim.Time) bool
	// DropRecv reports whether a receive omission at dst destroys the
	// packet src->dst that would be delivered at time now.
	DropRecv(src, dst mid.ProcID, now sim.Time) bool
}

// None is the reliable system: no failures at all.
type None struct{}

// Crashed implements Injector.
func (None) Crashed(mid.ProcID, sim.Time) bool { return false }

// DropSend implements Injector.
func (None) DropSend(mid.ProcID, mid.ProcID, sim.Time) bool { return false }

// DropRecv implements Injector.
func (None) DropRecv(mid.ProcID, mid.ProcID, sim.Time) bool { return false }

// Crash fail-stops one process at a fixed time. From At onwards the process
// neither sends nor receives, permanently.
type Crash struct {
	Proc mid.ProcID
	At   sim.Time
}

// Crashed implements Injector.
func (c Crash) Crashed(p mid.ProcID, now sim.Time) bool {
	return p == c.Proc && now >= c.At
}

// DropSend implements Injector. A crashed sender emits nothing.
func (c Crash) DropSend(src, _ mid.ProcID, now sim.Time) bool {
	return c.Crashed(src, now)
}

// DropRecv implements Injector. A crashed receiver absorbs nothing.
func (c Crash) DropRecv(_, dst mid.ProcID, now sim.Time) bool {
	return c.Crashed(dst, now)
}

// CrashWindow fail-stops one process for a bounded interval [At, Until):
// inside the window the process neither sends nor receives; at Until the
// site is back up — the model for a kill-and-restart experiment, where the
// new incarnation re-enters the group through the join protocol. (Crash
// knowledge already spread through decisions does not evaporate: the
// restarted process is re-admitted by a coordinator, not by the injector.)
type CrashWindow struct {
	Proc  mid.ProcID
	At    sim.Time
	Until sim.Time
}

// Crashed implements Injector.
func (c CrashWindow) Crashed(p mid.ProcID, now sim.Time) bool {
	return p == c.Proc && now >= c.At && now < c.Until
}

// DropSend implements Injector. A down sender emits nothing.
func (c CrashWindow) DropSend(src, _ mid.ProcID, now sim.Time) bool {
	return c.Crashed(src, now)
}

// DropRecv implements Injector. A down receiver absorbs nothing.
func (c CrashWindow) DropRecv(_, dst mid.ProcID, now sim.Time) bool {
	return c.Crashed(dst, now)
}

// EveryNth drops every N-th packet it is consulted about, counting all
// packets globally. This is the deterministic reading of the paper's
// "one omission failure each 500 messages" (the 1/500 and 1/100 curves of
// Figure 4). With Side selecting where the omission occurs it covers send
// omissions, receive omissions, and subnet loss, which all look identical
// to the protocol.
type EveryNth struct {
	N    int
	Side Side
	sent int
	recv int
}

// Side selects where an omission is charged.
type Side int

// Omission sides.
const (
	AtSend Side = iota // sender-side or subnet loss before the wire
	AtRecv             // receiver-side loss (e.g. buffer overflow)
)

// Crashed implements Injector.
func (*EveryNth) Crashed(mid.ProcID, sim.Time) bool { return false }

// DropSend implements Injector.
func (e *EveryNth) DropSend(_, _ mid.ProcID, _ sim.Time) bool {
	if e.Side != AtSend || e.N <= 0 {
		return false
	}
	e.sent++
	return e.sent%e.N == 0
}

// DropRecv implements Injector.
func (e *EveryNth) DropRecv(_, _ mid.ProcID, _ sim.Time) bool {
	if e.Side != AtRecv || e.N <= 0 {
		return false
	}
	e.recv++
	return e.recv%e.N == 0
}

// Rate drops packets independently with probability P, using its own seeded
// RNG so different injectors do not perturb each other's streams.
type Rate struct {
	P    float64
	Side Side
	rng  *rand.Rand
}

// NewRate returns a probabilistic omission injector with the given drop
// probability, side and seed.
func NewRate(p float64, side Side, seed int64) *Rate {
	return &Rate{P: p, Side: side, rng: rand.New(rand.NewSource(seed))}
}

// Crashed implements Injector.
func (*Rate) Crashed(mid.ProcID, sim.Time) bool { return false }

// DropSend implements Injector.
func (r *Rate) DropSend(_, _ mid.ProcID, _ sim.Time) bool {
	return r.Side == AtSend && r.rng.Float64() < r.P
}

// DropRecv implements Injector.
func (r *Rate) DropRecv(_, _ mid.ProcID, _ sim.Time) bool {
	return r.Side == AtRecv && r.rng.Float64() < r.P
}

// During confines an inner injector's omissions to the window [From, To).
// Crashes are not windowed — a crash inside the window is still permanent —
// matching Figure 6's "failures are considered to occur during the first
// 5 rtd".
//
// Scoping contract: the window scopes the inner injector's world. Outside
// [From, To) the inner injector is not consulted at all, so a
// counter-based inner like EveryNth counts in-window packets only —
// During{EveryNth{N}} means "every Nth packet of the window", not "the
// window's share of a run-long cadence". OnlyProc filters the same way.
// Multi is the deliberate opposite: it consults every member on every
// packet, so sibling counters advance consistently regardless of
// composition order. The experiments (Figure 6, the ablations) depend on
// window-scoped counting; a regression test pins the composed schedule.
type During struct {
	From, To sim.Time
	Inner    Injector
}

// Crashed implements Injector.
func (d During) Crashed(p mid.ProcID, now sim.Time) bool {
	return d.Inner.Crashed(p, now)
}

// DropSend implements Injector.
func (d During) DropSend(src, dst mid.ProcID, now sim.Time) bool {
	if now < d.From || now >= d.To {
		return false
	}
	return d.Inner.DropSend(src, dst, now)
}

// DropRecv implements Injector.
func (d During) DropRecv(src, dst mid.ProcID, now sim.Time) bool {
	if now < d.From || now >= d.To {
		return false
	}
	return d.Inner.DropRecv(src, dst, now)
}

// OnlyProc restricts an inner injector's omissions to packets sent by (for
// send omissions) or addressed to (for receive omissions) one process,
// modelling a single faulty process under the general omission model. Like
// During, the filter scopes the inner injector's world: other processes'
// packets never reach the inner injector, so its counters advance on the
// faulty process's traffic only.
type OnlyProc struct {
	Proc  mid.ProcID
	Inner Injector
}

// Crashed implements Injector.
func (o OnlyProc) Crashed(p mid.ProcID, now sim.Time) bool {
	return o.Inner.Crashed(p, now)
}

// DropSend implements Injector.
func (o OnlyProc) DropSend(src, dst mid.ProcID, now sim.Time) bool {
	return src == o.Proc && o.Inner.DropSend(src, dst, now)
}

// DropRecv implements Injector.
func (o OnlyProc) DropRecv(src, dst mid.ProcID, now sim.Time) bool {
	return dst == o.Proc && o.Inner.DropRecv(src, dst, now)
}

// Multi composes injectors: a failure occurs if any member injects it.
// Every member is consulted on every packet — even after an earlier member
// already injected the failure — so counter- and rng-based members advance
// identically however the composition is ordered.
type Multi []Injector

// Crashed implements Injector.
func (m Multi) Crashed(p mid.ProcID, now sim.Time) bool {
	for _, in := range m {
		if in.Crashed(p, now) {
			return true
		}
	}
	return false
}

// DropSend implements Injector.
func (m Multi) DropSend(src, dst mid.ProcID, now sim.Time) bool {
	drop := false
	for _, in := range m {
		// Consult every member so counter-based injectors advance
		// consistently regardless of composition order.
		if in.DropSend(src, dst, now) {
			drop = true
		}
	}
	return drop
}

// DropRecv implements Injector.
func (m Multi) DropRecv(src, dst mid.ProcID, now sim.Time) bool {
	drop := false
	for _, in := range m {
		if in.DropRecv(src, dst, now) {
			drop = true
		}
	}
	return drop
}

// Crashes builds one Crash injector per entry of schedule, mapping process
// to crash time.
func Crashes(schedule map[mid.ProcID]sim.Time) Multi {
	// Deterministic order for reproducibility of any rng-bearing composition.
	procs := make([]mid.ProcID, 0, len(schedule))
	for p := range schedule {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	m := make(Multi, 0, len(schedule))
	for _, p := range procs {
		m = append(m, Crash{Proc: p, At: schedule[p]})
	}
	return m
}

// Partition splits the group into two sides for a time window: packets
// crossing the cut are dropped in both directions; traffic within a side
// flows normally. Crashes are unaffected. Heal by letting the window end.
type Partition struct {
	From, To sim.Time
	// SideA holds the processes of one side; everyone else is on the other.
	SideA map[mid.ProcID]bool
}

// Crashed implements Injector.
func (Partition) Crashed(mid.ProcID, sim.Time) bool { return false }

// DropSend implements Injector.
func (p Partition) DropSend(src, dst mid.ProcID, now sim.Time) bool {
	if now < p.From || now >= p.To {
		return false
	}
	return p.SideA[src] != p.SideA[dst]
}

// DropRecv implements Injector.
func (Partition) DropRecv(mid.ProcID, mid.ProcID, sim.Time) bool { return false }

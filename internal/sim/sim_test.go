package sim

import (
	"testing"
)

func TestTimeConversions(t *testing.T) {
	if RoundOf(0) != 0 || RoundOf(TicksPerRound-1) != 0 || RoundOf(TicksPerRound) != 1 {
		t.Error("RoundOf boundaries wrong")
	}
	if SubrunOf(TicksPerSubrun) != 1 || SubrunOf(TicksPerSubrun-1) != 0 {
		t.Error("SubrunOf boundaries wrong")
	}
	if StartOfRound(3) != 3*TicksPerRound {
		t.Error("StartOfRound wrong")
	}
	if StartOfSubrun(2) != 2*TicksPerSubrun {
		t.Error("StartOfSubrun wrong")
	}
	if got := (2 * TicksPerRTD).RTD(); got != 2.0 {
		t.Errorf("RTD = %v", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %d", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestSameTickFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events reordered: %v", order)
		}
	}
}

func TestSchedulingFromWithinEvents(t *testing.T) {
	e := NewEngine(1)
	var hits []Time
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Errorf("hits = %v", hits)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.RunUntil(100)
	if ran != 3 || e.Now() != 100 {
		t.Errorf("ran=%d Now=%d", ran, e.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int {
		e := NewEngine(seed)
		var out []int
		for i := 0; i < 50; i++ {
			d := Time(e.RNG().Intn(100))
			v := i
			e.At(d, func() { out = append(out, v) })
		}
		e.Run()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTickerRounds(t *testing.T) {
	e := NewEngine(1)
	var rounds []int
	var times []Time
	NewTicker(e, func(r int) bool {
		rounds = append(rounds, r)
		times = append(times, e.Now())
		return r < 4
	})
	e.Run()
	if len(rounds) != 5 {
		t.Fatalf("rounds = %v", rounds)
	}
	for i, r := range rounds {
		if r != i {
			t.Errorf("round %d reported as %d", i, r)
		}
		if times[i] != StartOfRound(i) {
			t.Errorf("round %d fired at %d", i, times[i])
		}
	}
}

// Package sim provides the deterministic discrete-event engine underneath
// the protocol simulations.
//
// The paper evaluates everything in units of round-trip delay (rtd): a
// subrun lasts one rtd and consists of two rounds (Section 4). The engine
// therefore exposes virtual time as integer ticks with fixed conversions to
// rounds, subruns and rtds. Events scheduled for the same tick fire in
// scheduling order, so a run is a pure function of its inputs and seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in ticks.
type Time int64

// Tick conversions. One subrun = 2 rounds = 1 rtd, as in the paper.
const (
	TicksPerRound  Time = 500
	RoundsPerRTD        = 2
	TicksPerRTD         = TicksPerRound * RoundsPerRTD
	TicksPerSubrun      = TicksPerRTD
)

// RTD converts ticks to (fractional) round-trip delays.
func (t Time) RTD() float64 { return float64(t) / float64(TicksPerRTD) }

// RoundOf returns the round index containing tick t.
func RoundOf(t Time) int { return int(t / TicksPerRound) }

// SubrunOf returns the subrun index containing tick t.
func SubrunOf(t Time) int { return int(t / TicksPerSubrun) }

// StartOfRound returns the first tick of round r.
func StartOfRound(r int) Time { return Time(r) * TicksPerRound }

// StartOfSubrun returns the first tick of subrun s.
func StartOfSubrun(s int) Time { return Time(s) * TicksPerSubrun }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// Engine is a deterministic discrete-event scheduler. It is not safe for
// concurrent use: simulations are single-goroutine by design so that runs
// are reproducible.
type Engine struct {
	now       Time
	seq       uint64
	events    eventHeap
	rng       *rand.Rand
	processed uint64
}

// NewEngine returns an engine at time zero with a seeded RNG. The same seed
// always yields the same run.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source. All randomness in a
// simulation must come from here.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// At schedules fn to run at tick t. Scheduling into the past is a
// programming error and panics: silently reordering time would corrupt the
// simulation in ways that are very hard to debug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step runs the next pending event, advancing time to it. It reports
// whether an event was run.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// RunUntil runs events until the queue is empty or the next event is
// strictly after the deadline. Time ends at min(deadline, last event time).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline && len(e.events) == 0 {
		e.now = deadline
	}
}

// Run drains the event queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Pending returns the number of scheduled events not yet run.
func (e *Engine) Pending() int { return len(e.events) }

// Processed returns the number of events run so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Ticker drives a callback at the start of every round, which is how the
// round-synchronous protocol entities are clocked. Stop it by returning
// false from the callback.
type Ticker struct {
	eng   *Engine
	round int
	fn    func(round int) bool
}

// NewTicker registers fn to run at the start of every round, beginning with
// round 0 (tick 0). fn returns false to stop ticking.
func NewTicker(eng *Engine, fn func(round int) bool) *Ticker {
	t := &Ticker{eng: eng, fn: fn}
	eng.At(0, t.tick)
	return t
}

func (t *Ticker) tick() {
	if !t.fn(t.round) {
		return
	}
	t.round++
	t.eng.At(StartOfRound(t.round), t.tick)
}

package capture

import (
	"bytes"
	"sync"
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/faultrt"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

func dataFrame(t *testing.T, id mid.MID) []byte {
	t.Helper()
	buf, err := wire.MarshalAppend(nil, &wire.Data{Msg: causal.Message{ID: id, Payload: []byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestRingRoundTrip(t *testing.T) {
	r := New(Options{Node: 2, N: 5, K: 4, R: 8, SelfExclusion: true})
	f := dataFrame(t, mid.MID{Proc: 1, Seq: 7})
	seq0 := r.Record(DirIngress, 0, 1, Delivered, 0, f)
	seq1 := r.Record(DirEgress, 3, mid.None, Sent, 0, f)
	r.Record(DirIngress, 0, 4, FaultDrop, faultrt.KindSet(0).With(faultrt.KindPartition), f)
	r.Mark(Crash, faultrt.KindSet(0).With(faultrt.KindCrash))
	if seq0 != 0 || seq1 != 1 {
		t.Fatalf("seqs %d,%d, want 0,1", seq0, seq1)
	}

	var buf bytes.Buffer
	if err := r.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Node != 2 || d.N != 5 || d.K != 4 || d.R != 8 || !d.SelfExclusion {
		t.Fatalf("header %+v", d)
	}
	if len(d.Records) != 4 {
		t.Fatalf("%d records, want 4", len(d.Records))
	}
	in := d.Records[0]
	if in.Dir != DirIngress || in.Verdict != Delivered || in.Peer != 1 || !bytes.Equal(in.Frame, f) {
		t.Fatalf("record 0: %+v", in)
	}
	if d.Records[1].Group != 3 || d.Records[1].Peer != mid.None {
		t.Fatalf("record 1: %+v", d.Records[1])
	}
	if !d.Records[2].Fault.Has(faultrt.KindPartition) {
		t.Fatalf("record 2 fault: %v", d.Records[2].Fault)
	}
	mark := d.Records[3]
	if mark.Dir != DirMark || mark.Verdict != Crash || len(mark.Frame) != 0 {
		t.Fatalf("record 3: %+v", mark)
	}
	info := Summarize(in.Frame)
	if info.Kind != "DATA" || len(info.MIDs) != 1 || info.MIDs[0] != (mid.MID{Proc: 1, Seq: 7}).String() {
		t.Fatalf("summary %+v", info)
	}
}

func TestRingEviction(t *testing.T) {
	r := New(Options{Node: 0, N: 3, K: 2, R: 4, MaxFrames: 4})
	f := dataFrame(t, mid.MID{Proc: 0, Seq: 1})
	for i := 0; i < 10; i++ {
		r.Record(DirIngress, 0, 1, Delivered, 0, f)
	}
	d := r.Snapshot()
	if len(d.Records) != 4 {
		t.Fatalf("%d records retained, want 4", len(d.Records))
	}
	if d.Evicted != 6 {
		t.Fatalf("evicted %d, want 6", d.Evicted)
	}
	if d.Records[0].Seq != 6 || d.Records[3].Seq != 9 {
		t.Fatalf("retained seqs %d..%d, want 6..9", d.Records[0].Seq, d.Records[3].Seq)
	}
}

func TestRingByteBudget(t *testing.T) {
	r := New(Options{Node: 0, N: 3, K: 2, R: 4, MaxFrames: 1024, MaxBytes: 64})
	frame := make([]byte, 30)
	for i := 0; i < 8; i++ {
		r.Record(DirIngress, 0, 1, Delivered, 0, frame)
	}
	d := r.Snapshot()
	if len(d.Records) != 2 {
		t.Fatalf("%d records retained under the byte budget, want 2", len(d.Records))
	}
	if d.EvictedBytes != 6*30 {
		t.Fatalf("evicted bytes %d, want %d", d.EvictedBytes, 6*30)
	}
}

// TestDisabledRingAllocFree pins the disabled recorder's cost at zero: a
// nil *Ring must not allocate on the hot path, the same budget the obs and
// lifecycle layers honor.
func TestDisabledRingAllocFree(t *testing.T) {
	var r *Ring
	frame := dataFrame(t, mid.MID{Proc: 0, Seq: 1})
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(DirIngress, 0, 1, Delivered, 0, frame)
		r.Mark(Crash, 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled capture path allocates %.1f/op, want 0", allocs)
	}
}

// TestConcurrentRecordSnapshot hammers the ring from writers while a reader
// snapshots and encodes — run under -race this pins the locking discipline.
func TestConcurrentRecordSnapshot(t *testing.T) {
	r := New(Options{Node: 1, N: 3, K: 2, R: 4, MaxFrames: 64})
	f := dataFrame(t, mid.MID{Proc: 2, Seq: 3})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Record(DirIngress, 0, 2, Delivered, 0, f)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.Snapshot().Encode(&buf); err != nil {
			t.Error(err)
			break
		}
		if _, err := Decode(&buf); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a capture dump at all........."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	r := New(Options{Node: 0, N: 3, K: 2, R: 4})
	r.Record(DirIngress, 0, 1, Delivered, 0, []byte("abc"))
	if err := r.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated dump accepted")
	}
}

package capture

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"urcgc/internal/faultrt"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// The dump format is versioned and length-prefixed so a replayer from a
// later build can refuse (or adapt to) an older artifact instead of
// misparsing it:
//
//	magic "URCGCCAP" | version u16 | node i32 | n u16 | k u16 | r u16
//	| flags u8 (bit0 self-exclusion) | startWall unixnano i64
//	| evicted u64 | evictedBytes u64 | count u32
//	| count × { seq u64 | atns i64 | dir u8 | verdict u8 | fault u8
//	            | peer i32 | group u32 | frameLen u32 | frame bytes }
//
// All integers are little-endian.
const (
	// FormatVersion is the current dump format version.
	FormatVersion = 1
	headerSize    = 8 + 2 + 4 + 2 + 2 + 2 + 1 + 8 + 8 + 8 + 4
	recHeadSize   = 8 + 8 + 1 + 1 + 1 + 4 + 4 + 4
)

var magic = [8]byte{'U', 'R', 'C', 'G', 'C', 'C', 'A', 'P'}

// maxFrameLen rejects corrupt dumps claiming absurd frame sizes; it is the
// runtimes' shared datagram bound.
const maxFrameLen = 64 * 1024

// Dump is one member's decoded capture artifact.
type Dump struct {
	Version       int
	Node          mid.ProcID
	N, K, R       int
	SelfExclusion bool
	StartWall     time.Time
	Evicted       uint64
	EvictedBytes  uint64
	Records       []Record
}

// Encode writes the versioned binary dump.
func (d *Dump) Encode(w io.Writer) error {
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(FormatVersion))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(int32(d.Node)))
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(d.N))
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(d.K))
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(d.R))
	var flags byte
	if d.SelfExclusion {
		flags |= 1
	}
	hdr = append(hdr, flags)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(d.StartWall.UnixNano()))
	hdr = binary.LittleEndian.AppendUint64(hdr, d.Evicted)
	hdr = binary.LittleEndian.AppendUint64(hdr, d.EvictedBytes)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(d.Records)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 0, recHeadSize+256)
	for i := range d.Records {
		rec := &d.Records[i]
		buf = buf[:0]
		buf = binary.LittleEndian.AppendUint64(buf, rec.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.AtNs))
		buf = append(buf, byte(rec.Dir), byte(rec.Verdict), byte(rec.Fault))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(rec.Peer)))
		buf = binary.LittleEndian.AppendUint32(buf, rec.Group)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Frame)))
		buf = append(buf, rec.Frame...)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Decode parses one binary dump.
func Decode(r io.Reader) (*Dump, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("capture: short header: %w", err)
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, fmt.Errorf("capture: bad magic %q", hdr[:8])
	}
	version := int(binary.LittleEndian.Uint16(hdr[8:]))
	if version != FormatVersion {
		return nil, fmt.Errorf("capture: format version %d (this build reads %d)", version, FormatVersion)
	}
	d := &Dump{
		Version:       version,
		Node:          mid.ProcID(int32(binary.LittleEndian.Uint32(hdr[10:]))),
		N:             int(binary.LittleEndian.Uint16(hdr[14:])),
		K:             int(binary.LittleEndian.Uint16(hdr[16:])),
		R:             int(binary.LittleEndian.Uint16(hdr[18:])),
		SelfExclusion: hdr[20]&1 != 0,
		StartWall:     time.Unix(0, int64(binary.LittleEndian.Uint64(hdr[21:]))),
		Evicted:       binary.LittleEndian.Uint64(hdr[29:]),
		EvictedBytes:  binary.LittleEndian.Uint64(hdr[37:]),
	}
	count := binary.LittleEndian.Uint32(hdr[45:])
	d.Records = make([]Record, 0, count)
	rh := make([]byte, recHeadSize)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, rh); err != nil {
			return nil, fmt.Errorf("capture: record %d: short head: %w", i, err)
		}
		rec := Record{
			Seq:     binary.LittleEndian.Uint64(rh),
			AtNs:    int64(binary.LittleEndian.Uint64(rh[8:])),
			Dir:     Dir(rh[16]),
			Verdict: Verdict(rh[17]),
			Fault:   faultrt.KindSet(rh[18]),
			Peer:    mid.ProcID(int32(binary.LittleEndian.Uint32(rh[19:]))),
			Group:   binary.LittleEndian.Uint32(rh[23:]),
		}
		flen := binary.LittleEndian.Uint32(rh[27:])
		if flen > maxFrameLen {
			return nil, fmt.Errorf("capture: record %d claims %d frame bytes (max %d)", i, flen, maxFrameLen)
		}
		if flen > 0 {
			rec.Frame = make([]byte, flen)
			if _, err := io.ReadFull(r, rec.Frame); err != nil {
				return nil, fmt.Errorf("capture: record %d: short frame: %w", i, err)
			}
		}
		d.Records = append(d.Records, rec)
	}
	return d, nil
}

// FrameInfo is a decoded summary of one stored frame body.
type FrameInfo struct {
	Kind   string   `json:"kind,omitempty"`
	MIDs   []string `json:"mids,omitempty"`
	Subrun int64    `json:"subrun,omitempty"`
	Note   string   `json:"note,omitempty"`
}

// Summarize decodes a stored frame body through the wire codec into a
// compact human summary: the PDU kind, the user-message MIDs it carries
// (Data/DataBatch/Retransmit), and the subrun for Request/Decision.
func Summarize(frame []byte) FrameInfo {
	if len(frame) == 0 {
		return FrameInfo{}
	}
	pdu, err := wire.Unmarshal(frame)
	if err != nil {
		return FrameInfo{Note: "undecodable: " + err.Error()}
	}
	info := FrameInfo{Kind: pdu.Kind().String()}
	for _, m := range FrameMIDs(pdu) {
		info.MIDs = append(info.MIDs, m.String())
	}
	switch p := pdu.(type) {
	case *wire.Request:
		info.Subrun = p.Subrun
	case *wire.Decision:
		info.Subrun = p.Subrun
	}
	return info
}

// FrameMIDs lists the user-message identifiers a PDU carries: one for
// Data, each batched message for DataBatch, each recovered message for
// Retransmit. Control PDUs carry none.
func FrameMIDs(pdu wire.PDU) []mid.MID {
	switch p := pdu.(type) {
	case *wire.Data:
		return []mid.MID{p.Msg.ID}
	case *wire.DataBatch:
		out := make([]mid.MID, len(p.Msgs))
		for i := range p.Msgs {
			out[i] = p.Msgs[i].ID
		}
		return out
	case *wire.Retransmit:
		out := make([]mid.MID, len(p.Msgs))
		for i, m := range p.Msgs {
			out[i] = m.ID
		}
		return out
	}
	return nil
}

// RecordView is the JSON shape of one record for /capture?decode=1.
type RecordView struct {
	Seq     uint64    `json:"seq"`
	At      string    `json:"at"`
	Dir     string    `json:"dir"`
	Verdict string    `json:"verdict"`
	Fault   string    `json:"fault,omitempty"`
	Peer    int32     `json:"peer"`
	Group   uint32    `json:"group"`
	Bytes   int       `json:"bytes"`
	Frame   FrameInfo `json:"frame"`
}

// DumpView is the JSON shape of a decoded dump.
type DumpView struct {
	Version       int          `json:"version"`
	Node          int32        `json:"node"`
	N             int          `json:"n"`
	K             int          `json:"k"`
	R             int          `json:"r"`
	SelfExclusion bool         `json:"self_exclusion"`
	StartWall     time.Time    `json:"start_wall"`
	Evicted       uint64       `json:"evicted"`
	EvictedBytes  uint64       `json:"evicted_bytes"`
	Records       []RecordView `json:"records"`
}

// View renders the dump for JSON exposition, decoding every frame body.
func (d *Dump) View() DumpView {
	v := DumpView{
		Version:       d.Version,
		Node:          int32(d.Node),
		N:             d.N,
		K:             d.K,
		R:             d.R,
		SelfExclusion: d.SelfExclusion,
		StartWall:     d.StartWall,
		Evicted:       d.Evicted,
		EvictedBytes:  d.EvictedBytes,
		Records:       make([]RecordView, 0, len(d.Records)),
	}
	for i := range d.Records {
		rec := &d.Records[i]
		rv := RecordView{
			Seq:     rec.Seq,
			At:      time.Duration(rec.AtNs).String(),
			Dir:     rec.Dir.String(),
			Verdict: rec.Verdict.String(),
			Peer:    int32(rec.Peer),
			Group:   rec.Group,
			Bytes:   len(rec.Frame),
			Frame:   Summarize(rec.Frame),
		}
		if rec.Fault != 0 {
			rv.Fault = rec.Fault.String()
		}
		v.Records = append(v.Records, rv)
	}
	return v
}

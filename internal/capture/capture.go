// Package capture is the runtime's frame-level flight recorder: a bounded
// ring of raw wire frames — ingress and egress — each tagged with a
// monotonic timestamp, direction, peer, group and a verdict (delivered, a
// discard cause from the reader's taxonomy, or an injected fault with its
// kind). Where metrics count what happened and lifecycle spans time it, the
// capture ring keeps the evidence: the bytes themselves, joinable across
// members by (group, MID) and replayable offline through fresh protocol
// entities (internal/replay), so a live anomaly becomes a reproducible
// artifact instead of a counter.
//
// Like obs and lifecycle, the recorder is nil-gated: a nil *Ring is a valid
// disabled recorder, every method on it returns immediately, and the
// disabled hot path stays allocation-free (pinned by AllocsPerRun guards).
//
// Frames are stored without the group envelope — the record's Peer and
// Group fields carry what the envelope would, which lets the UDP runtime
// (which strips the envelope on receive) and the in-process mesh (which
// never frames one) share one record shape. Records whose verdict is a
// parse failure (short/badsrc) keep the raw evidence bytes instead.
package capture

import (
	"sync"
	"time"

	"urcgc/internal/faultrt"
	"urcgc/internal/mid"
)

// Dir is the direction of a captured frame.
type Dir uint8

const (
	// DirMark is a frameless marker record (e.g. the member's own crash).
	DirMark Dir = iota
	// DirIngress is a frame arriving at this member.
	DirIngress
	// DirEgress is a frame leaving this member.
	DirEgress
)

// String renders the direction.
func (d Dir) String() string {
	switch d {
	case DirMark:
		return "mark"
	case DirIngress:
		return "in"
	case DirEgress:
		return "out"
	default:
		return "dir?"
	}
}

// Verdict is what the runtime did with a captured frame. The ingress
// verdicts mirror the UDP reader's discard taxonomy one-for-one, so the
// udp_drop_* counters are joinable to dumped frames.
type Verdict uint8

const (
	// Delivered: the frame was decoded and handed to the protocol loop.
	Delivered Verdict = iota
	// Sent: the frame left this member with a clean fault verdict.
	Sent
	// DropShort: the envelope did not parse (udp_drop_short_total).
	DropShort
	// DropBadSrc: the claimed source is outside the group
	// (udp_drop_badsrc_total).
	DropBadSrc
	// DropDecode: the PDU body did not decode (udp_drop_decode_total).
	DropDecode
	// DropOversize: the frame exceeded the datagram limit, in either
	// direction (udp_drop_oversize_total / udp_send_oversize_total).
	DropOversize
	// DropGroup: the frame addressed a group this member does not host
	// (topics_drop_group_total), or a non-zero group on a single-group node.
	DropGroup
	// DropInbox: the frame was valid but the protocol inbox (or shard
	// inbox) was full — an overload omission.
	DropInbox
	// FaultDrop: a fault injector (or the test-only DropFrame seam, or a
	// crashed receiver absorbing nothing) destroyed the frame; Fault names
	// the kind.
	FaultDrop
	// FaultDelay: an injected delay held the frame; it was still delivered
	// (or shipped) later.
	FaultDelay
	// FaultDup: injected duplication; the frame was delivered 1+Dup times.
	FaultDup
	// Crash marks the member's own fail-stop (a DirMark record): every
	// later frame on this ring happened while the member was dead.
	Crash

	nVerdicts
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Delivered:
		return "delivered"
	case Sent:
		return "sent"
	case DropShort:
		return "drop-short"
	case DropBadSrc:
		return "drop-badsrc"
	case DropDecode:
		return "drop-decode"
	case DropOversize:
		return "drop-oversize"
	case DropGroup:
		return "drop-group"
	case DropInbox:
		return "drop-inbox"
	case FaultDrop:
		return "fault-drop"
	case FaultDelay:
		return "fault-delay"
	case FaultDup:
		return "fault-dup"
	case Crash:
		return "crash"
	default:
		return "verdict?"
	}
}

// Reached reports whether a frame with this verdict reached the protocol
// entity (ingress) or the wire (egress) — the replayer feeds exactly these.
func (v Verdict) Reached() bool {
	return v == Delivered || v == Sent || v == FaultDelay || v == FaultDup
}

// Classify maps a fault-injector action onto the verdict of a frame that
// would otherwise be ok (Delivered on ingress, Sent on egress): an injected
// drop wins, then delay, then duplication; a clean action keeps ok.
func Classify(ok Verdict, act faultrt.Action) Verdict {
	switch {
	case act.Drop:
		return FaultDrop
	case act.Delay > 0:
		return FaultDelay
	case act.Dup > 0:
		return FaultDup
	}
	return ok
}

// Record is one captured frame (or marker).
type Record struct {
	// Seq is the ring-assigned capture sequence number, monotonically
	// increasing from 0 and never reused; evicted records leave a gap at
	// the front. Warn lines reference it as "capture #N".
	Seq uint64
	// AtNs is the monotonic time of the capture in nanoseconds since the
	// ring was created (immune to wall-clock steps).
	AtNs int64
	// Dir is the frame direction; DirMark records carry no frame.
	Dir Dir
	// Verdict is what the runtime did with the frame.
	Verdict Verdict
	// Fault carries the injected fault kinds when Verdict is Fault*.
	Fault faultrt.KindSet
	// Peer is the other end: the claimed source for ingress, the
	// destination for egress, mid.None for a broadcast or a mark.
	Peer mid.ProcID
	// Group is the group id the frame addressed.
	Group uint32
	// Frame is the marshaled PDU body (no envelope — Peer and Group carry
	// that), or the raw evidence bytes for parse-failure verdicts, or nil
	// for marks and metadata-only records.
	Frame []byte
}

// Options configure a ring. Node and the protocol shape (N, K, R,
// SelfExclusion) are stamped into every dump so the replayer can rebuild
// the member's protocol entity from the artifact alone.
type Options struct {
	Node          mid.ProcID
	N, K, R       int
	SelfExclusion bool
	// MaxFrames bounds retained records (default 8192).
	MaxFrames int
	// MaxBytes bounds retained frame bytes (default 16MB).
	MaxBytes int
}

// Ring is a bounded flight recorder of wire frames. All methods are safe
// for concurrent use and valid on a nil receiver (disabled, free).
type Ring struct {
	opts      Options
	startWall time.Time
	start     time.Time // monotonic base for AtNs

	mu           sync.Mutex
	recs         []Record // circular; cap == opts.MaxFrames
	head         int      // index of the oldest record
	count        int
	bytes        int
	seq          uint64
	evicted      uint64
	evictedBytes uint64
}

// New builds an enabled ring. The monotonic clock starts now.
func New(o Options) *Ring {
	if o.MaxFrames <= 0 {
		o.MaxFrames = 8192
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 16 << 20
	}
	now := time.Now()
	return &Ring{opts: o, startWall: now, start: now}
}

// Enabled reports whether the ring records anything.
func (r *Ring) Enabled() bool { return r != nil }

// Record captures one frame. The frame bytes are copied (outside the
// lock), so the caller's buffer is immediately reusable. It returns the
// assigned capture sequence number; on a nil ring it returns 0 and does
// nothing, without allocating.
func (r *Ring) Record(dir Dir, group uint32, peer mid.ProcID, v Verdict, fault faultrt.KindSet, frame []byte) uint64 {
	if r == nil {
		return 0
	}
	var cp []byte
	if len(frame) > 0 {
		cp = append(make([]byte, 0, len(frame)), frame...)
	}
	at := time.Since(r.start).Nanoseconds()
	r.mu.Lock()
	seq := r.seq
	r.seq++
	if r.recs == nil {
		r.recs = make([]Record, r.opts.MaxFrames)
	}
	if r.count == len(r.recs) {
		r.evictLocked()
	}
	slot := (r.head + r.count) % len(r.recs)
	r.recs[slot] = Record{Seq: seq, AtNs: at, Dir: dir, Verdict: v, Fault: fault,
		Peer: peer, Group: group, Frame: cp}
	r.count++
	r.bytes += len(cp)
	for r.bytes > r.opts.MaxBytes && r.count > 1 {
		r.evictLocked()
	}
	r.mu.Unlock()
	return seq
}

// Mark records a frameless marker (e.g. the member's own crash).
func (r *Ring) Mark(v Verdict, fault faultrt.KindSet) uint64 {
	return r.Record(DirMark, 0, mid.None, v, fault, nil)
}

// evictLocked drops the oldest record. Callers hold r.mu.
func (r *Ring) evictLocked() {
	old := &r.recs[r.head]
	r.bytes -= len(old.Frame)
	r.evictedBytes += uint64(len(old.Frame))
	old.Frame = nil
	r.head = (r.head + 1) % len(r.recs)
	r.count--
	r.evicted++
}

// Len returns how many records the ring currently retains.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Node returns the member identity stamped into dumps (mid.None on nil).
func (r *Ring) Node() mid.ProcID {
	if r == nil {
		return mid.None
	}
	return r.opts.Node
}

// Snapshot copies the retained records into a Dump. Frame bytes are
// aliased, not copied — records already own their slices and are never
// mutated after insertion, only evicted wholesale. Nil ring → nil dump.
func (r *Ring) Snapshot() *Dump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := &Dump{
		Version:       FormatVersion,
		Node:          r.opts.Node,
		N:             r.opts.N,
		K:             r.opts.K,
		R:             r.opts.R,
		SelfExclusion: r.opts.SelfExclusion,
		StartWall:     r.startWall,
		Evicted:       r.evicted,
		EvictedBytes:  r.evictedBytes,
		Records:       make([]Record, 0, r.count),
	}
	for i := 0; i < r.count; i++ {
		d.Records = append(d.Records, r.recs[(r.head+i)%len(r.recs)])
	}
	return d
}

// Benchmarks regenerating the paper's evaluation (one benchmark per table
// and figure), plus micro-benchmarks of the protocol's hot paths and
// ablations of its design choices. Custom metrics carry the scientific
// quantities: delay_rtd, T_rtd, ctlmsgs/subrun, histpeak, and so on.
//
// The figure and hot-path benchmark bodies live in internal/benchsuite so
// cmd/urcgc-bench can run the identical code to record BENCH_BASELINE.json;
// this file wraps them for `go test -bench` and keeps the ablation
// sub-benchmarks, which are not part of the recorded baseline.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package urcgc

import (
	"testing"

	"urcgc/internal/benchsuite"
	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

// ---- Figure 4: mean end-to-end delay vs offered load ----

func BenchmarkFig4Reliable(b *testing.B) { benchsuite.Fig4Reliable(b) }
func BenchmarkFig4Crashes(b *testing.B)  { benchsuite.Fig4Crashes(b) }
func BenchmarkFig4Omit500(b *testing.B)  { benchsuite.Fig4Omit500(b) }
func BenchmarkFig4Omit100(b *testing.B)  { benchsuite.Fig4Omit100(b) }

// ---- Figure 5: agreement time vs consecutive coordinator crashes ----

func BenchmarkFig5(b *testing.B) { benchsuite.Fig5(b) }

// ---- Table 1: control messages and sizes ----

func BenchmarkTable1(b *testing.B) { benchsuite.Table1(b) }

// ---- Figure 6: history length over time ----

func BenchmarkFig6a(b *testing.B) { benchsuite.Fig6a(b) }
func BenchmarkFig6b(b *testing.B) { benchsuite.Fig6b(b) }

// ---- Hot-path micro-benchmarks ----

func BenchmarkDeliveryReadyTest(b *testing.B)         { benchsuite.DeliveryReadyTest(b) }
func BenchmarkHistoryStoreAndClean(b *testing.B)      { benchsuite.HistoryStoreAndClean(b) }
func BenchmarkWaitlistCascade(b *testing.B)           { benchsuite.WaitlistCascade(b) }
func BenchmarkWireMarshalDecision(b *testing.B)       { benchsuite.WireMarshalDecision(b) }
func BenchmarkWireMarshalAppendDecision(b *testing.B) { benchsuite.WireMarshalAppendDecision(b) }
func BenchmarkWireUnmarshalData(b *testing.B)         { benchsuite.WireUnmarshalData(b) }
func BenchmarkVectorClockDeliverable(b *testing.B)    { benchsuite.VectorClockDeliverable(b) }
func BenchmarkCBCASTRun(b *testing.B)                 { benchsuite.CBCASTRun(b) }
func BenchmarkLiveConfirmLatency(b *testing.B)        { benchsuite.LiveConfirmLatency(b) }
func BenchmarkStageLatencyBreakdown(b *testing.B)     { benchsuite.StageLatencyBreakdown(b) }
func BenchmarkLifecycleOverhead(b *testing.B)         { benchsuite.LifecycleOverhead(b) }
func BenchmarkSamplerOverhead(b *testing.B)           { benchsuite.SamplerOverhead(b) }

// ---- Throughput saturation: msgs/sec x cluster size x batch size ----

func BenchmarkThroughputSaturationN5B1(b *testing.B)  { benchsuite.ThroughputSaturationN5B1(b) }
func BenchmarkThroughputSaturationN5B8(b *testing.B)  { benchsuite.ThroughputSaturationN5B8(b) }
func BenchmarkThroughputSaturationN5B32(b *testing.B) { benchsuite.ThroughputSaturationN5B32(b) }
func BenchmarkThroughputSaturationN9B32(b *testing.B) { benchsuite.ThroughputSaturationN9B32(b) }

// ---- Group scaling: aggregate msgs/sec x groups x shards ----

func BenchmarkGroupScalingG1S1(b *testing.B) { benchsuite.GroupScalingG1S1(b) }
func BenchmarkGroupScalingG2S2(b *testing.B) { benchsuite.GroupScalingG2S2(b) }
func BenchmarkGroupScalingG4S4(b *testing.B) { benchsuite.GroupScalingG4S4(b) }
func BenchmarkGroupScalingG8S8(b *testing.B) { benchsuite.GroupScalingG8S8(b) }
func BenchmarkGroupScalingG8S1(b *testing.B) { benchsuite.GroupScalingG8S1(b) }

// ---- Ablations ----

// BenchmarkAblationTransportH quantifies the Section 5 trade: moving loss
// repair into the transport (h=4) versus recovering from history (h=1).
func BenchmarkAblationTransportH(b *testing.B) {
	for _, h := range []int{1, 4} {
		h := h
		name := map[int]string{1: "h1-datagram", 4: "h4-transport"}[h]
		b.Run(name, func(b *testing.B) {
			var recoveries, retries float64
			for i := 0; i < b.N; i++ {
				c, err := core.NewCluster(core.ClusterConfig{
					Config:     core.Config{N: 5, K: 3, R: 8, SelfExclusion: true},
					Seed:       int64(i) + 11,
					TransportH: h,
					Injector: fault.During{
						From: 0, To: 12 * sim.TicksPerRTD,
						Inner: fault.NewRate(0.04, fault.AtSend, int64(i)+77),
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				_, err = c.Run(core.RunOptions{
					MaxRounds: 600, MinRounds: 60,
					OnRound: func(round int) {
						if round%2 != 0 || round/2 >= 15 {
							return
						}
						for p := 0; p < c.N(); p++ {
							if c.Active(mid.ProcID(p)) {
								_, _ = c.Submit(mid.ProcID(p), make([]byte, 64), nil)
							}
						}
					},
					StopWhenQuiescent: true, DrainSubruns: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				recoveries, retries = 0, 0
				for p := 0; p < c.N(); p++ {
					recoveries += float64(c.Proc(mid.ProcID(p)).Stats.Recoveries)
					if e := c.TransportEntity(mid.ProcID(p)); e != nil {
						retries += float64(e.Stats.Retries)
					}
				}
			}
			b.ReportMetric(recoveries, "history_recoveries")
			b.ReportMetric(retries, "transport_retries")
		})
	}
}

// BenchmarkAblationFlowControl contrasts history peaks with and without the
// 8n flow-control threshold under stalled stability.
func BenchmarkAblationFlowControl(b *testing.B) {
	// The crash stalls cleaning for the K-subrun detection window, during
	// which histories grow to about K*n = 50; the threshold of 3n = 30 cuts
	// into that, demonstrating the bound (the paper's 8n plays the same
	// role at its larger scale, cf. Figure 6b).
	for _, threshold := range []int{0, 30} {
		threshold := threshold
		name := map[int]string{0: "off", 30: "3n"}[threshold]
		b.Run(name, func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				c, err := core.NewCluster(core.ClusterConfig{
					Config: core.Config{
						N: 10, K: 5, R: 12, HistoryThreshold: threshold, SelfExclusion: true,
					},
					Seed:     int64(i) + 3,
					Injector: fault.Crash{Proc: 9, At: 2 * sim.TicksPerRTD},
				})
				if err != nil {
					b.Fatal(err)
				}
				for p := 0; p < 10; p++ {
					for m := 0; m < 30; m++ {
						_, _ = c.Submit(mid.ProcID(p), make([]byte, 64), nil)
					}
				}
				_, err = c.Run(core.RunOptions{
					MaxRounds: 800, MinRounds: 60,
					StopWhenQuiescent: true, DrainSubruns: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				peak = c.HistMax.Max()
			}
			b.ReportMetric(peak, "histpeak")
		})
	}
}

// BenchmarkAblationCausalLabelling contrasts the intermediate
// interpretation (explicit single-dependency labels) against the
// conservative temporal labelling (depend on everything seen, as CBCAST
// implies): the temporal form drags every sequence behind every other.
func BenchmarkAblationCausalLabelling(b *testing.B) {
	for _, temporal := range []bool{false, true} {
		temporal := temporal
		name := map[bool]string{false: "intermediate", true: "temporal"}[temporal]
		b.Run(name, func(b *testing.B) {
			var d float64
			for i := 0; i < b.N; i++ {
				c, err := core.NewCluster(core.ClusterConfig{
					Config: core.Config{N: 8, K: 3, R: 8, SelfExclusion: true},
					Seed:   int64(i) + 5,
					Injector: fault.During{
						From: 0, To: 20 * sim.TicksPerRTD,
						Inner: &fault.EveryNth{N: 150, Side: fault.AtSend},
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				_, err = c.Run(core.RunOptions{
					MaxRounds: 500, MinRounds: 2 * 40,
					OnRound: func(round int) {
						if round%2 != 0 || round/2 >= 40 {
							return
						}
						for p := 0; p < c.N(); p++ {
							pp := mid.ProcID(p)
							if !c.Active(pp) {
								continue
							}
							if temporal {
								_, _ = c.SubmitCausal(pp, make([]byte, 64))
							} else {
								_, _ = c.Submit(pp, make([]byte, 64), nil)
							}
						}
					},
					StopWhenQuiescent: true, DrainSubruns: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				d = c.Delay.MeanRTD()
			}
			b.ReportMetric(d, "delay_rtd")
		})
	}
}

// Benchmarks regenerating the paper's evaluation (one benchmark per table
// and figure), plus micro-benchmarks of the protocol's hot paths and
// ablations of its design choices. Custom metrics carry the scientific
// quantities: delay_rtd, T_rtd, ctlmsgs/subrun, histpeak, and so on.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package urcgc

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"urcgc/internal/causal"
	"urcgc/internal/cbcast"
	"urcgc/internal/core"
	"urcgc/internal/experiments"
	"urcgc/internal/fault"
	"urcgc/internal/history"
	"urcgc/internal/mid"
	"urcgc/internal/rt"
	"urcgc/internal/sim"
	"urcgc/internal/vclock"
	"urcgc/internal/waitlist"
	"urcgc/internal/wire"
)

// ---- Figure 4: mean end-to-end delay vs offered load ----

func benchFig4(b *testing.B, inj func() fault.Injector) {
	b.ReportAllocs()
	var lastD float64
	for i := 0; i < b.N; i++ {
		var fi fault.Injector
		if inj != nil {
			fi = inj()
		}
		c, err := core.NewCluster(core.ClusterConfig{
			Config:   core.Config{N: 10, K: 3, R: 8, SelfExclusion: true},
			Seed:     int64(i) + 1,
			Injector: fi,
		})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i) + 7))
		_, err = c.Run(core.RunOptions{
			MaxRounds: 2*120 + 200, MinRounds: 2 * 120,
			OnRound: func(round int) {
				if round%2 != 0 || round/2 >= 120 {
					return
				}
				for p := 0; p < c.N(); p++ {
					pp := mid.ProcID(p)
					if c.Active(pp) && rng.Float64() < 1.0 {
						_, _ = c.Submit(pp, make([]byte, 64), nil)
					}
				}
			},
			StopWhenQuiescent: true, DrainSubruns: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		lastD = c.Delay.MeanRTD()
	}
	b.ReportMetric(lastD, "delay_rtd")
}

func BenchmarkFig4Reliable(b *testing.B) { benchFig4(b, nil) }

func BenchmarkFig4Crashes(b *testing.B) {
	benchFig4(b, func() fault.Injector {
		return fault.Multi{
			fault.Crash{Proc: 9, At: sim.StartOfSubrun(20)},
			fault.Crash{Proc: 8, At: sim.StartOfSubrun(45)},
			fault.Crash{Proc: 7, At: sim.StartOfSubrun(70)},
			fault.Crash{Proc: 6, At: sim.StartOfSubrun(95)},
		}
	})
}

func BenchmarkFig4Omit500(b *testing.B) {
	benchFig4(b, func() fault.Injector { return &fault.EveryNth{N: 500, Side: fault.AtSend} })
}

func BenchmarkFig4Omit100(b *testing.B) {
	benchFig4(b, func() fault.Injector { return &fault.EveryNth{N: 100, Side: fault.AtSend} })
}

// ---- Figure 5: agreement time vs consecutive coordinator crashes ----

func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	var res experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig5(experiments.Fig5Config{N: 10, K: 3, Fs: []int{0, 2}, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Points) == 2 {
		b.ReportMetric(res.Points[0].URCGCMeasured, "urcgcT(f=0)_rtd")
		b.ReportMetric(res.Points[1].URCGCMeasured, "urcgcT(f=2)_rtd")
		b.ReportMetric(res.Points[0].CBCASTMeasured, "cbcastT(f=0)_rtd")
		b.ReportMetric(res.Points[1].CBCASTMeasured, "cbcastT(f=2)_rtd")
	}
}

// ---- Table 1: control messages and sizes ----

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	var res experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table1(experiments.Table1Config{Ns: []int{15}, K: 3, Subruns: 40, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if row.Protocol == "urcgc" && row.Condition == "reliable" {
			b.ReportMetric(row.MsgsPerSubrun, "urcgc_ctl/subrun")
			b.ReportMetric(row.MeanSize, "urcgc_ctlB")
		}
		if row.Protocol == "cbcast" && row.Condition == "crash" {
			b.ReportMetric(row.MsgsPerSubrun, "cbcast_crash_ctl/subrun")
		}
	}
}

// ---- Figure 6: history length over time ----

func benchFig6(b *testing.B, flow bool) {
	b.ReportAllocs()
	var res experiments.Fig6Result
	cfg := experiments.Fig6Config{
		N: 40, Messages: 480, Ks: []int{3}, Threshold: 320, FailWindowRTD: 5, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		var err error
		if flow {
			res, err = experiments.Fig6b(cfg)
		} else {
			res, err = experiments.Fig6a(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, curve := range res.Curves {
		if curve.Faulty {
			b.ReportMetric(curve.Peak, "faulty_histpeak")
			b.ReportMetric(curve.DoneRTD, "faulty_done_rtd")
		} else {
			b.ReportMetric(curve.Peak, "reliable_histpeak")
		}
	}
}

func BenchmarkFig6a(b *testing.B) { benchFig6(b, false) }
func BenchmarkFig6b(b *testing.B) { benchFig6(b, true) }

// ---- Ablations ----

// BenchmarkAblationTransportH quantifies the Section 5 trade: moving loss
// repair into the transport (h=4) versus recovering from history (h=1).
func BenchmarkAblationTransportH(b *testing.B) {
	for _, h := range []int{1, 4} {
		h := h
		name := map[int]string{1: "h1-datagram", 4: "h4-transport"}[h]
		b.Run(name, func(b *testing.B) {
			var recoveries, retries float64
			for i := 0; i < b.N; i++ {
				c, err := core.NewCluster(core.ClusterConfig{
					Config:     core.Config{N: 5, K: 3, R: 8, SelfExclusion: true},
					Seed:       int64(i) + 11,
					TransportH: h,
					Injector: fault.During{
						From: 0, To: 12 * sim.TicksPerRTD,
						Inner: fault.NewRate(0.04, fault.AtSend, int64(i)+77),
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				_, err = c.Run(core.RunOptions{
					MaxRounds: 600, MinRounds: 60,
					OnRound: func(round int) {
						if round%2 != 0 || round/2 >= 15 {
							return
						}
						for p := 0; p < c.N(); p++ {
							if c.Active(mid.ProcID(p)) {
								_, _ = c.Submit(mid.ProcID(p), make([]byte, 64), nil)
							}
						}
					},
					StopWhenQuiescent: true, DrainSubruns: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				recoveries, retries = 0, 0
				for p := 0; p < c.N(); p++ {
					recoveries += float64(c.Proc(mid.ProcID(p)).Stats.Recoveries)
					if e := c.TransportEntity(mid.ProcID(p)); e != nil {
						retries += float64(e.Stats.Retries)
					}
				}
			}
			b.ReportMetric(recoveries, "history_recoveries")
			b.ReportMetric(retries, "transport_retries")
		})
	}
}

// BenchmarkAblationFlowControl contrasts history peaks with and without the
// 8n flow-control threshold under stalled stability.
func BenchmarkAblationFlowControl(b *testing.B) {
	// The crash stalls cleaning for the K-subrun detection window, during
	// which histories grow to about K*n = 50; the threshold of 3n = 30 cuts
	// into that, demonstrating the bound (the paper's 8n plays the same
	// role at its larger scale, cf. Figure 6b).
	for _, threshold := range []int{0, 30} {
		threshold := threshold
		name := map[int]string{0: "off", 30: "3n"}[threshold]
		b.Run(name, func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				c, err := core.NewCluster(core.ClusterConfig{
					Config: core.Config{
						N: 10, K: 5, R: 12, HistoryThreshold: threshold, SelfExclusion: true,
					},
					Seed:     int64(i) + 3,
					Injector: fault.Crash{Proc: 9, At: 2 * sim.TicksPerRTD},
				})
				if err != nil {
					b.Fatal(err)
				}
				for p := 0; p < 10; p++ {
					for m := 0; m < 30; m++ {
						_, _ = c.Submit(mid.ProcID(p), make([]byte, 64), nil)
					}
				}
				_, err = c.Run(core.RunOptions{
					MaxRounds: 800, MinRounds: 60,
					StopWhenQuiescent: true, DrainSubruns: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				peak = c.HistMax.Max()
			}
			b.ReportMetric(peak, "histpeak")
		})
	}
}

// BenchmarkAblationCausalLabelling contrasts the intermediate
// interpretation (explicit single-dependency labels) against the
// conservative temporal labelling (depend on everything seen, as CBCAST
// implies): the temporal form drags every sequence behind every other.
func BenchmarkAblationCausalLabelling(b *testing.B) {
	for _, temporal := range []bool{false, true} {
		temporal := temporal
		name := map[bool]string{false: "intermediate", true: "temporal"}[temporal]
		b.Run(name, func(b *testing.B) {
			var d float64
			for i := 0; i < b.N; i++ {
				c, err := core.NewCluster(core.ClusterConfig{
					Config: core.Config{N: 8, K: 3, R: 8, SelfExclusion: true},
					Seed:   int64(i) + 5,
					Injector: fault.During{
						From: 0, To: 20 * sim.TicksPerRTD,
						Inner: &fault.EveryNth{N: 150, Side: fault.AtSend},
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				_, err = c.Run(core.RunOptions{
					MaxRounds: 500, MinRounds: 2 * 40,
					OnRound: func(round int) {
						if round%2 != 0 || round/2 >= 40 {
							return
						}
						for p := 0; p < c.N(); p++ {
							pp := mid.ProcID(p)
							if !c.Active(pp) {
								continue
							}
							if temporal {
								_, _ = c.SubmitCausal(pp, make([]byte, 64))
							} else {
								_, _ = c.Submit(pp, make([]byte, 64), nil)
							}
						}
					},
					StopWhenQuiescent: true, DrainSubruns: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				d = c.Delay.MeanRTD()
			}
			b.ReportMetric(d, "delay_rtd")
		})
	}
}

// ---- Hot-path micro-benchmarks ----

func BenchmarkDeliveryReadyTest(b *testing.B) {
	tr := causal.NewTracker(40)
	for q := 0; q < 40; q++ {
		for s := mid.Seq(1); s <= 10; s++ {
			if err := tr.Process(&causal.Message{ID: mid.MID{Proc: mid.ProcID(q), Seq: s}}); err != nil {
				b.Fatal(err)
			}
		}
	}
	m := &causal.Message{
		ID:   mid.MID{Proc: 3, Seq: 11},
		Deps: mid.DepList{{Proc: 7, Seq: 10}, {Proc: 20, Seq: 9}, {Proc: 39, Seq: 10}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !tr.Ready(m) {
			b.Fatal("should be ready")
		}
	}
}

func BenchmarkHistoryStoreAndClean(b *testing.B) {
	b.ReportAllocs()
	stable := mid.NewSeqVector(40)
	for i := range stable {
		stable[i] = 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := history.New(40)
		for q := 0; q < 40; q++ {
			for s := mid.Seq(1); s <= 10; s++ {
				if err := h.Store(&causal.Message{ID: mid.MID{Proc: mid.ProcID(q), Seq: s}}); err != nil {
					b.Fatal(err)
				}
			}
		}
		if h.CleanTo(stable) != 400 {
			b.Fatal("clean mismatch")
		}
	}
}

func BenchmarkWaitlistCascade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := causal.NewTracker(8)
		wl := waitlist.New(8)
		// A chain of 64 messages arriving in reverse.
		for s := mid.Seq(64); s >= 2; s-- {
			wl.Add(&causal.Message{ID: mid.MID{Proc: 0, Seq: s}})
		}
		b.StartTimer()
		if err := tr.Process(&causal.Message{ID: mid.MID{Proc: 0, Seq: 1}}); err != nil {
			b.Fatal(err)
		}
		for {
			m := wl.NextReady(tr)
			if m == nil {
				break
			}
			wl.Remove(m.ID)
			if err := tr.Process(m); err != nil {
				b.Fatal(err)
			}
		}
		if wl.Len() != 0 {
			b.Fatal("cascade incomplete")
		}
	}
}

func BenchmarkWireMarshalDecision(b *testing.B) {
	d := &wire.Decision{
		Subrun:       1234,
		Coord:        3,
		MaxProcessed: mid.NewSeqVector(40),
		MostUpdated:  make([]mid.ProcID, 40),
		MinWaiting:   mid.NewSeqVector(40),
		CleanTo:      mid.NewSeqVector(40),
		Attempts:     make([]uint8, 40),
		Alive:        make([]bool, 40),
		Covered:      make([]bool, 40),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := wire.Marshal(d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectorClockDeliverable(b *testing.B) {
	local := vclock.New(40)
	ts := vclock.New(40)
	for i := range local {
		local[i] = uint32(i)
		ts[i] = uint32(i)
	}
	ts[5] = local[5] + 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !vclock.Deliverable(ts, 5, local) {
			b.Fatal("should deliver")
		}
	}
}

// BenchmarkCBCASTRun exercises the baseline end to end for comparison with
// the urcgc figure benches.
func BenchmarkCBCASTRun(b *testing.B) {
	b.ReportAllocs()
	var d float64
	for i := 0; i < b.N; i++ {
		c, err := cbcast.NewCluster(cbcast.ClusterConfig{
			Config: cbcast.Config{N: 10, K: 3},
			Seed:   int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		err = c.Run(2*120+100, func(round int) {
			if round%2 != 0 || round/2 >= 120 {
				return
			}
			for p := 0; p < c.N(); p++ {
				c.Submit(mid.ProcID(p), make([]byte, 64))
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		d = c.Delay.MeanRTD()
	}
	b.ReportMetric(d, "delay_rtd")
}

// BenchmarkLiveConfirmLatency measures the urcgc-data.Rq -> Conf latency on
// the live goroutine runtime (one confirm per iteration), exercising the
// real codec and channel mesh rather than the simulator.
func BenchmarkLiveConfirmLatency(b *testing.B) {
	c, err := rt.NewCluster(rt.Config{
		Config:        core.Config{N: 5, K: 3, R: 8, SelfExclusion: true},
		RoundDuration: 200 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Node(mid.ProcID(i%5)).Send(ctx, payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}

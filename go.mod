module urcgc

go 1.22
